// Table V — average computation time of the Optimization Engine on the four
// evaluation topologies (paper: CPLEX on a quad-core desktop; 0.029 s for
// Internet2 up to 3.013 s for AS-3679).
//
// We report our solver stack instead of CPLEX: the LP-guided rounding
// strategy where the LP is tractable, and the scalable greedy everywhere
// (the paper itself defers to heuristics for gigantic networks). The shape
// to reproduce: sub-second on the small/medium topologies, growing to
// seconds at 79 switches.
//
// Also prints Table IV (the VNF data sheets), since it is the input that
// parameterizes every run, and a serial-vs-parallel section for the exact
// branch-and-bound engine: the same ILP solved with num_workers = 1 and 4,
// reporting wall-clock speedup and status/objective parity. Node counts
// are printed for context only: the engine is deterministic for a FIXED
// worker count (mip.h), but a W-worker round solves up to W best-bound
// nodes before folding incumbents, so the trees — and node counts — can
// legitimately differ across worker counts.
//
// The exact section additionally races the dense tableau against the
// revised sparse simplex (lp/revised_simplex.h) on the x1 path and gates
// on the revised engine's two contract claims: total simplex pivot count
// drops by >= 2x (dual warm restarts re-solve each B&B child in a handful
// of pivots instead of a cold solve), and the dual path actually engages
// (lp.simplex.dual_pivots > 0, median pivots per warm node <= 10). A
// byte-identical repeat of the serial revised run guards the determinism
// contract end to end.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "core/ilp_builder.h"
#include "core/optimization_engine.h"
#include "lp/mip.h"
#include "net/routing.h"
#include "obs/metrics.h"
#include "traffic/flow_classes.h"
#include "vnf/nf_types.h"

namespace {

using namespace apple;

struct Row {
  std::string label;
  std::size_t nodes = 0, links = 0, classes = 0;
  double greedy_s = 0.0;
  double lp_round_s = -1.0;  // <0 = skipped (LP too large)
  std::uint64_t instances = 0;
};

Row run_case(const std::string& label, const net::Topology& topo,
             double total_mbps, bool run_lp, std::size_t repetitions) {
  const net::AllPairsPaths routing(topo);
  const auto chains = vnf::default_policy_chains();
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = total_mbps});
  const auto classes = traffic::build_classes(
      topo, routing, tm, bench::evaluation_chain_assignment(chains.size()));

  core::PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;

  Row row;
  row.label = label;
  row.nodes = topo.num_nodes();
  row.links = topo.num_links();
  row.classes = classes.size();

  core::EngineOptions greedy;
  greedy.strategy = core::PlacementStrategy::kGreedy;
  double total = 0.0;
  for (std::size_t r = 0; r < repetitions; ++r) {
    const auto plan = core::OptimizationEngine(greedy).place(input);
    total += plan.solve_seconds;
    row.instances = plan.total_instances();
  }
  row.greedy_s = total / static_cast<double>(repetitions);

  if (run_lp) {
    core::EngineOptions lp;
    lp.strategy = core::PlacementStrategy::kLpRound;
    const auto plan = core::OptimizationEngine(lp).place(input);
    row.lp_round_s = plan.solve_seconds;
  }
  return row;
}

struct ExactRow {
  std::string label;
  std::size_t classes = 0, vars = 0, rows = 0;
  double serial_s = 0.0, parallel_s = 0.0, dense_s = 0.0;
  std::uint64_t serial_nodes = 0, parallel_nodes = 0;
  double serial_obj = 0.0, parallel_obj = 0.0;
  std::uint64_t dense_pivots = 0, revised_pivots = 0, dual_pivots = 0;
  bool parity = false;
  bool deterministic = false;
};

constexpr std::size_t kParallelWorkers = 4;

// Cumulative revised+dense simplex iteration count; deltas around a solve
// give that solve's total pivot work. Reads 0 with metrics compiled out,
// so the pivot gates only arm under APPLE_ENABLE_METRICS.
std::uint64_t pivots_now() {
  return obs::default_registry().counter("lp.simplex.iterations").value();
}

std::uint64_t dual_pivots_now() {
  return obs::default_registry().counter("lp.simplex.dual_pivots").value();
}

lp::MipResult solve_exact(const lp::LpModel& model, std::size_t workers,
                          lp::SimplexAlgorithm algorithm, double* seconds) {
  lp::MipOptions opt;
  opt.num_workers = workers;
  opt.time_limit_sec = 120.0;
  opt.simplex.algorithm = algorithm;
  const auto t0 = std::chrono::steady_clock::now();
  lp::MipResult r = lp::MipSolver(opt).solve(model);
  *seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return r;
}

// Exact branch-and-bound on a class-prefix slice of the evaluation input:
// the full Table V instances are out of reach for a dense-tableau B&B, so
// we keep the first `num_classes` traffic classes — still the real ILP
// (Eq. 1-8), just fewer commodities — and solve the identical model with 1
// worker and with kParallelWorkers. Both runs must agree on status and
// objective (global pruning correctness); node counts may differ across
// worker counts and are reported, not gated.
ExactRow run_exact_case(const std::string& label, const net::Topology& topo,
                        double total_mbps, std::size_t num_classes) {
  const net::AllPairsPaths routing(topo);
  const auto chains = vnf::default_policy_chains();
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = total_mbps});
  auto classes = traffic::build_classes(
      topo, routing, tm, bench::evaluation_chain_assignment(chains.size()));
  if (classes.size() > num_classes) classes.resize(num_classes);

  core::PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;
  const core::IlpBuilder builder(input, /*integral_q=*/true);

  ExactRow row;
  row.label = label;
  row.classes = classes.size();
  row.vars = builder.model().num_vars();
  row.rows = builder.model().num_rows();

  std::uint64_t mark = pivots_now();
  const std::uint64_t dual_mark = dual_pivots_now();
  const lp::MipResult serial = solve_exact(
      builder.model(), 1, lp::SimplexAlgorithm::kAuto, &row.serial_s);
  row.revised_pivots = pivots_now() - mark;
  row.dual_pivots = dual_pivots_now() - dual_mark;

  // Same worker count, same model: the search must be byte-identical.
  double repeat_s = 0.0;
  const lp::MipResult repeat = solve_exact(
      builder.model(), 1, lp::SimplexAlgorithm::kAuto, &repeat_s);
  row.deterministic =
      repeat.status == serial.status &&
      repeat.nodes_explored == serial.nodes_explored &&
      repeat.x.size() == serial.x.size() &&
      std::memcmp(&repeat.objective, &serial.objective, sizeof(double)) == 0 &&
      (serial.x.empty() ||
       std::memcmp(repeat.x.data(), serial.x.data(),
                   serial.x.size() * sizeof(double)) == 0);

  mark = pivots_now();
  const lp::MipResult dense = solve_exact(
      builder.model(), 1, lp::SimplexAlgorithm::kDense, &row.dense_s);
  row.dense_pivots = pivots_now() - mark;

  const lp::MipResult parallel =
      solve_exact(builder.model(), kParallelWorkers,
                  lp::SimplexAlgorithm::kAuto, &row.parallel_s);
  row.serial_nodes = serial.nodes_explored;
  row.parallel_nodes = parallel.nodes_explored;
  row.serial_obj = serial.objective;
  row.parallel_obj = parallel.objective;
  // x1 vs x4 on the same engine must agree exactly; the dense reference
  // takes a different arithmetic path, so it gets a relative tolerance.
  const double dense_gap = std::abs(dense.objective - serial.objective) /
                           std::max(1.0, std::abs(serial.objective));
  row.parity = serial.status == parallel.status &&
               serial.objective == parallel.objective &&
               serial.status == dense.status && dense_gap <= 1e-6;
  return row;
}

}  // namespace

int main() {
  bench::print_header("Table IV: VNF data sheets (input)");
  std::printf("%-18s %-14s %-10s %-8s\n", "Network Function", "Core Required",
              "Capacity", "ClickOS");
  bench::print_rule();
  for (const auto& spec : vnf::nf_catalog()) {
    std::printf("%-18s %-14.0f %-10s %-8s\n",
                std::string(vnf::to_string(spec.type)).c_str(),
                spec.cores_required,
                (std::to_string(static_cast<int>(spec.capacity_mbps)) + "Mbps")
                    .c_str(),
                spec.clickos ? "yes" : "no");
  }

  bench::print_header(
      "Table V: average computation time of the Optimization Engine");
  std::printf("%-10s %-6s %-6s %-8s %-14s %-14s %-10s\n", "Topology", "Nodes",
              "Links", "Classes", "greedy (s)", "lp-round (s)", "Instances");
  bench::print_rule();

  std::vector<Row> rows;
  for (const auto& tc : apple::bench::simulation_topologies()) {
    rows.push_back(run_case(tc.label, tc.topo, tc.total_mbps,
                            /*run_lp=*/true, /*repetitions=*/5));
  }
  rows.push_back(run_case("AS-3679", apple::bench::large_topology(), 40000.0,
                          /*run_lp=*/false, /*repetitions=*/3));

  for (const Row& row : rows) {
    if (row.lp_round_s >= 0.0) {
      std::printf("%-10s %-6zu %-6zu %-8zu %-14.4f %-14.4f %-10llu\n",
                  row.label.c_str(), row.nodes, row.links, row.classes,
                  row.greedy_s, row.lp_round_s,
                  static_cast<unsigned long long>(row.instances));
    } else {
      std::printf("%-10s %-6zu %-6zu %-8zu %-14.4f %-14s %-10llu\n",
                  row.label.c_str(), row.nodes, row.links, row.classes,
                  row.greedy_s, "(skipped)",
                  static_cast<unsigned long long>(row.instances));
    }
  }
  std::printf(
      "\nPaper Table V (CPLEX): Internet2 0.029 s, GEANT 0.1 s, UNIV1 0.235 s,\n"
      "AS-3679 3.013 s — monotone in topology size, seconds at 79 switches.\n");

  bench::print_header(
      "Exact branch-and-bound: dense vs revised, serial vs parallel "
      "(class-prefix slices)");
  std::printf("%-14s %-8s %-6s %-6s %-9s %-9s %-9s %-8s %-14s %-8s %-6s\n",
              "Instance", "Classes", "Vars", "Rows", "dense(s)", "x1 (s)",
              "x4 (s)", "Speedup", "Nodes x1/x4", "Parity", "Det");
  bench::print_rule();
  std::vector<ExactRow> exact_rows;
  exact_rows.push_back(run_exact_case(
      "Internet2-18", net::make_internet2(), 1200.0, /*num_classes=*/18));
  exact_rows.push_back(run_exact_case("GEANT-16", net::make_geant(), 4000.0,
                                      /*num_classes=*/16));
  bool all_parity = true;
  bool all_deterministic = true;
  bool pivots_ok = true;
  for (const ExactRow& row : exact_rows) {
    const double speedup =
        row.parallel_s > 0.0 ? row.serial_s / row.parallel_s : 0.0;
    std::printf(
        "%-14s %-8zu %-6zu %-6zu %-9.3f %-9.3f %-9.3f %-8.2f %-14s %-8s "
        "%-6s\n",
        row.label.c_str(), row.classes, row.vars, row.rows, row.dense_s,
        row.serial_s, row.parallel_s, speedup,
        (std::to_string(row.serial_nodes) + "/" +
         std::to_string(row.parallel_nodes))
            .c_str(),
        row.parity ? "ok" : "MISMATCH", row.deterministic ? "ok" : "DRIFT");
    all_parity = all_parity && row.parity;
    all_deterministic = all_deterministic && row.deterministic;
  }

  std::printf("\n%-14s %-14s %-14s %-10s %-12s\n", "Instance", "dense pivots",
              "revised piv.", "Reduction", "dual piv.");
  bench::print_rule();
  for (const ExactRow& row : exact_rows) {
    const double reduction =
        row.revised_pivots > 0
            ? static_cast<double>(row.dense_pivots) /
                  static_cast<double>(row.revised_pivots)
            : 0.0;
    std::printf("%-14s %-14llu %-14llu %-10.2f %-12llu\n", row.label.c_str(),
                static_cast<unsigned long long>(row.dense_pivots),
                static_cast<unsigned long long>(row.revised_pivots),
                reduction,
                static_cast<unsigned long long>(row.dual_pivots));
#if defined(APPLE_ENABLE_METRICS) && APPLE_ENABLE_METRICS
    // Contract gate (DESIGN.md Sec. 14): the revised engine must cut total
    // pivot work at least in half and actually run its dual warm path.
    if (reduction < 2.0 || row.dual_pivots == 0) pivots_ok = false;
#endif
  }
#if defined(APPLE_ENABLE_METRICS) && APPLE_ENABLE_METRICS
  const obs::HistogramSnapshot warm =
      obs::default_registry()
          .histogram("lp.simplex.dual_pivots_per_warm")
          .snapshot();
  std::printf(
      "\nDual warm restarts: %llu nodes, pivots/warm-node p50 %.1f p95 %.1f "
      "max %.0f\n",
      static_cast<unsigned long long>(warm.count), warm.p50, warm.p95,
      warm.max);
  if (warm.count == 0 || warm.p50 > 10.0) pivots_ok = false;
#endif
  std::printf(
      "\nParity gates on status + objective (x1 == x%zu exactly; the dense\n"
      "reference within 1e-6 relative). Determinism ('Det') gates on a\n"
      "byte-identical repeat of the x1 run. Node counts are informational:\n"
      "x1 and x%zu may explore different trees. Speedup needs >= %zu cores.\n",
      kParallelWorkers, kParallelWorkers, kParallelWorkers);

  bench::export_metrics_json("table5_solver_time");
  if (!all_parity) {
    std::fprintf(stderr, "error: serial/parallel parity violated\n");
    return 1;
  }
  if (!all_deterministic) {
    std::fprintf(stderr, "error: repeated x1 run was not byte-identical\n");
    return 1;
  }
  if (!pivots_ok) {
    std::fprintf(stderr,
                 "error: revised-simplex pivot contract violated "
                 "(need >= 2x reduction, dual warm restarts engaged, "
                 "pivots/warm-node p50 <= 10)\n");
    return 1;
  }
  return 0;
}
