// Table V — average computation time of the Optimization Engine on the four
// evaluation topologies (paper: CPLEX on a quad-core desktop; 0.029 s for
// Internet2 up to 3.013 s for AS-3679).
//
// We report our solver stack instead of CPLEX: the LP-guided rounding
// strategy where the LP is tractable, and the scalable greedy everywhere
// (the paper itself defers to heuristics for gigantic networks). The shape
// to reproduce: sub-second on the small/medium topologies, growing to
// seconds at 79 switches.
//
// Also prints Table IV (the VNF data sheets), since it is the input that
// parameterizes every run.
#include <cstdio>

#include "bench_common.h"
#include "core/optimization_engine.h"
#include "net/routing.h"
#include "traffic/flow_classes.h"
#include "vnf/nf_types.h"

namespace {

using namespace apple;

struct Row {
  std::string label;
  std::size_t nodes = 0, links = 0, classes = 0;
  double greedy_s = 0.0;
  double lp_round_s = -1.0;  // <0 = skipped (LP too large)
  std::uint64_t instances = 0;
};

Row run_case(const std::string& label, const net::Topology& topo,
             double total_mbps, bool run_lp, std::size_t repetitions) {
  const net::AllPairsPaths routing(topo);
  const auto chains = vnf::default_policy_chains();
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = total_mbps});
  const auto classes = traffic::build_classes(
      topo, routing, tm, bench::evaluation_chain_assignment(chains.size()));

  core::PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;

  Row row;
  row.label = label;
  row.nodes = topo.num_nodes();
  row.links = topo.num_links();
  row.classes = classes.size();

  core::EngineOptions greedy;
  greedy.strategy = core::PlacementStrategy::kGreedy;
  double total = 0.0;
  for (std::size_t r = 0; r < repetitions; ++r) {
    const auto plan = core::OptimizationEngine(greedy).place(input);
    total += plan.solve_seconds;
    row.instances = plan.total_instances();
  }
  row.greedy_s = total / static_cast<double>(repetitions);

  if (run_lp) {
    core::EngineOptions lp;
    lp.strategy = core::PlacementStrategy::kLpRound;
    const auto plan = core::OptimizationEngine(lp).place(input);
    row.lp_round_s = plan.solve_seconds;
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header("Table IV: VNF data sheets (input)");
  std::printf("%-18s %-14s %-10s %-8s\n", "Network Function", "Core Required",
              "Capacity", "ClickOS");
  bench::print_rule();
  for (const auto& spec : vnf::nf_catalog()) {
    std::printf("%-18s %-14.0f %-10s %-8s\n",
                std::string(vnf::to_string(spec.type)).c_str(),
                spec.cores_required,
                (std::to_string(static_cast<int>(spec.capacity_mbps)) + "Mbps")
                    .c_str(),
                spec.clickos ? "yes" : "no");
  }

  bench::print_header(
      "Table V: average computation time of the Optimization Engine");
  std::printf("%-10s %-6s %-6s %-8s %-14s %-14s %-10s\n", "Topology", "Nodes",
              "Links", "Classes", "greedy (s)", "lp-round (s)", "Instances");
  bench::print_rule();

  std::vector<Row> rows;
  for (const auto& tc : apple::bench::simulation_topologies()) {
    rows.push_back(run_case(tc.label, tc.topo, tc.total_mbps,
                            /*run_lp=*/true, /*repetitions=*/5));
  }
  rows.push_back(run_case("AS-3679", apple::bench::large_topology(), 40000.0,
                          /*run_lp=*/false, /*repetitions=*/3));

  for (const Row& row : rows) {
    if (row.lp_round_s >= 0.0) {
      std::printf("%-10s %-6zu %-6zu %-8zu %-14.4f %-14.4f %-10llu\n",
                  row.label.c_str(), row.nodes, row.links, row.classes,
                  row.greedy_s, row.lp_round_s,
                  static_cast<unsigned long long>(row.instances));
    } else {
      std::printf("%-10s %-6zu %-6zu %-8zu %-14.4f %-14s %-10llu\n",
                  row.label.c_str(), row.nodes, row.links, row.classes,
                  row.greedy_s, "(skipped)",
                  static_cast<unsigned long long>(row.instances));
    }
  }
  std::printf(
      "\nPaper Table V (CPLEX): Internet2 0.029 s, GEANT 0.1 s, UNIV1 0.235 s,\n"
      "AS-3679 3.013 s — monotone in topology size, seconds at 79 switches.\n");
  bench::export_metrics_json("table5_solver_time");
  return 0;
}
