// Fig. 12 — packet loss rate over time while replaying the time-varying
// traffic matrices, with and without fast failover, on Internet2 / GEANT /
// UNIV1 (Sec. IX-E).
//
// The placement is computed once from the *mean* matrix; the snapshot
// series (diurnal pattern + noise + injected bursts, the small-time-scale
// dynamics) is then replayed in time order. Shape to reproduce: loss stays
// much lower with fast failover across all three topologies, and only a
// few extra ClickOS cores are used (the paper reports < 17 on average).
#include <cstdio>

#include "bench_common.h"
#include "traffic/stats.h"

int main() {
  using namespace apple;
  bench::print_header(
      "Fig. 12: packet loss rate over time, with vs without fast failover");

  for (const auto& tc : bench::stress_topologies()) {
    core::ControllerConfig cfg;
    cfg.engine.strategy = core::PlacementStrategy::kGreedy;
    cfg.snapshot_duration = 1.0;
    cfg.tick = 0.025;
    cfg.poll_interval = 0.05;
    cfg.policied_fraction = bench::kPoliciedFraction;
    cfg.reoptimize_every = 24;  // periodic Optimization Engine runs (Sec. VI)
    const core::AppleController controller(
        tc.topo, vnf::default_policy_chains(), cfg);

    // Mild diurnal drift (the periodic Optimization Engine tracks it) plus
    // sharp bursts — the small-time-scale dynamics fast failover exists
    // for (Sec. VI).
    const traffic::TrafficMatrix base = traffic::make_gravity_matrix(
        tc.topo.num_nodes(), {.total_mbps = tc.total_mbps, .seed = 30});
    traffic::DiurnalConfig diurnal;
    diurnal.num_snapshots = 96;
    diurnal.diurnal_amplitude = 0.15;
    diurnal.noise_sigma = 0.08;
    diurnal.seed = 31;
    auto series = traffic::make_diurnal_series(base, diurnal);
    traffic::BurstConfig bursts;
    bursts.probability = 0.2;
    bursts.magnitude = 4.0;
    bursts.duration = 3;
    traffic::inject_bursts(series, bursts);

    const traffic::TrafficMatrix mean = traffic::mean_matrix(series);
    const core::Epoch epoch = controller.optimize(mean);
    const core::ReplayReport off = controller.replay(epoch, series, false);
    const core::ReplayReport on = controller.replay(epoch, series, true);

    std::printf("\n%s  (%zu snapshots, placement from the mean matrix, %llu"
                " instances)\n",
                tc.label.c_str(), series.size(),
                static_cast<unsigned long long>(epoch.plan.total_instances()));
    std::printf("  %-22s %-12s %-12s\n", "", "mean loss", "max loss");
    std::printf("  %-22s %-12.4f %-12.4f\n", "without fast failover",
                off.mean_loss, off.max_loss);
    std::printf("  %-22s %-12.4f %-12.4f\n", "with fast failover",
                on.mean_loss, on.max_loss);
    std::printf("  failover: %zu overload events, %zu ClickOS launches, "
                "extra cores avg %.1f / peak %.0f\n",
                on.failover.overload_events, on.failover.instances_launched,
                on.failover.mean_extra_cores(),
                on.failover.peak_extra_cores);

    // Downsampled loss timeline (mean over 8-snapshot bins).
    std::printf("  timeline (loss per 8-snapshot bin, off | on):\n");
    for (std::size_t bin = 0; bin + 8 <= off.snapshot_loss.size(); bin += 8) {
      double loss_off = 0.0, loss_on = 0.0;
      for (std::size_t k = 0; k < 8; ++k) {
        loss_off += off.snapshot_loss[bin + k];
        loss_on += on.snapshot_loss[bin + k];
      }
      std::printf("    t=%3zu..%3zu  %.4f | %.4f\n", bin, bin + 7,
                  loss_off / 8.0, loss_on / 8.0);
    }
  }
  std::printf(
      "\nPaper Fig. 12: loss remains much lower with fast failover on all\n"
      "three topologies; < 17 additional cores on average support it.\n");
  apple::bench::export_metrics_json("fig12_loss_over_time");
  return 0;
}
