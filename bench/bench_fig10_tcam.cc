// Fig. 10 — boxplot of the TCAM usage reduction ratio of APPLE's tagging
// scheme vs per-switch classification, across traffic-matrix snapshots, for
// Internet2 / GEANT / UNIV1 (Sec. IX-C).
//
// Shape to reproduce: at least ~4x reduction everywhere, best on UNIV1
// (every path crosses the 2-tier core, so ingress-only classification
// saves the most re-classification).
//
// Doubles as two ablations called out in DESIGN.md:
//   * sub-class realization: consistent hashing vs IP-prefix splitting
//     (the prefix method inflates classifier rules, Sec. V-A);
//   * flow-table pipelining vs cross-product TCAM layouts (Sec. V-B).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/optimization_engine.h"
#include "core/rule_generator.h"
#include "core/subclass_assigner.h"
#include "net/routing.h"
#include "traffic/stats.h"

namespace {

using namespace apple;

struct CaseResult {
  traffic::BoxplotStats ratio;           // tagging reduction ratio
  double prefix_rule_inflation = 0.0;    // prefix-split vs hashing
  double crossproduct_inflation = 0.0;   // non-pipelined vs pipelined
};

CaseResult run_case(const net::Topology& topo, double total_mbps,
                    std::size_t snapshots) {
  const net::AllPairsPaths routing(topo);
  const auto chains = vnf::default_policy_chains();
  const auto series =
      bench::snapshot_series(topo, total_mbps, snapshots, /*seed=*/10);

  core::EngineOptions engine;
  engine.strategy = core::PlacementStrategy::kGreedy;

  std::vector<double> ratios;
  double hash_rules = 0.0, prefix_rules = 0.0;
  double pipelined_rules = 0.0, flat_rules = 0.0;
  for (const auto& tm : series) {
    const auto classes = traffic::build_classes(
        topo, routing, tm, bench::evaluation_chain_assignment(chains.size()));
    core::PlacementInput input;
    input.topology = &topo;
    input.classes = classes;
    input.chains = chains;
    const auto plan = core::OptimizationEngine(engine).place(input);
    if (!plan.feasible) continue;
    const auto inventory = core::materialize_inventory(input, plan);

    core::AssignerOptions hash_opts;
    hash_opts.method = core::SubclassMethod::kConsistentHash;
    const auto by_hash =
        core::assign_subclasses(input, plan, inventory, hash_opts);
    const auto report =
        core::RuleGenerator().account(input, by_hash, &routing);
    ratios.push_back(report.tcam_reduction_ratio());
    hash_rules += static_cast<double>(report.tcam_with_tagging);
    pipelined_rules += static_cast<double>(report.tcam_with_tagging);

    core::AssignerOptions prefix_opts;
    prefix_opts.method = core::SubclassMethod::kPrefixSplit;
    const auto by_prefix =
        core::assign_subclasses(input, plan, inventory, prefix_opts);
    prefix_rules += static_cast<double>(
        core::RuleGenerator()
            .account(input, by_prefix, &routing)
            .tcam_with_tagging);

    flat_rules += static_cast<double>(
        core::RuleGenerator(/*pipelined=*/false)
            .account(input, by_hash, &routing)
            .tcam_with_tagging);
  }
  CaseResult result;
  result.ratio = traffic::boxplot(ratios);
  result.prefix_rule_inflation = prefix_rules / hash_rules;
  result.crossproduct_inflation = flat_rules / pipelined_rules;
  return result;
}

}  // namespace

int main() {
  using namespace apple;
  bench::print_header(
      "Fig. 10: TCAM usage reduction ratio (tagging vs no tagging)");
  std::printf("%-10s %-8s %-8s %-8s %-8s %-8s\n", "Topology", "min", "q1",
              "median", "q3", "max");
  bench::print_rule();

  std::vector<std::pair<std::string, CaseResult>> results;
  for (const auto& tc : bench::stress_topologies()) {
    results.emplace_back(tc.label,
                         run_case(tc.topo, tc.total_mbps, /*snapshots=*/48));
  }
  for (const auto& [label, result] : results) {
    std::printf("%-10s %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f\n", label.c_str(),
                result.ratio.min, result.ratio.q1, result.ratio.median,
                result.ratio.q3, result.ratio.max);
  }

  bench::print_header("ablations (same sweep)");
  std::printf("%-10s %-34s %-30s\n", "Topology",
              "prefix-split rules / hash rules", "cross-product / pipelined");
  bench::print_rule();
  for (const auto& [label, result] : results) {
    std::printf("%-10s %-34.2f %-30.2f\n", label.c_str(),
                result.prefix_rule_inflation, result.crossproduct_inflation);
  }
  std::printf(
      "\nPaper Fig. 10: >= 4x reduction on all three topologies, most\n"
      "pronounced on the data-center topology (UNIV1).\n");
  apple::bench::export_metrics_json("fig10_tcam");
  return 0;
}
