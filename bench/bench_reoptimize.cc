// Large-time-scale re-optimization (paper Sec. VI): full recompute vs the
// incremental epoch pipeline on a drifting snapshot series.
//
// Each topology starts from its gravity base matrix; every subsequent
// snapshot perturbs each OD entry by a deterministic factor in
// [1-kDrift, 1+kDrift]. With the default 5% pin threshold roughly half the
// classes stay pinned per step, so the incremental path re-solves a
// fraction of the commodities over residual capacity while the full path
// re-places everything from scratch.
//
// Reported per topology: wall-clock (full vs incremental, summed over the
// series), instance churn (full reinstall = retire the whole fleet and
// boot the next one each epoch; incremental = the PlanDelta ops actually
// emitted), rule churn, and the modeled control-plane makespan from
// Figs. 5/7 timings (ClickOS boot 4.25 s mean / reconfigure 30 ms /
// rule install 70 ms).
//
// Gate (exit 1 on violation), on the GEANT series — the acceptance case:
// the incremental path must beat the full path's wall-clock AND churn
// strictly fewer instances and rules than full reinstall. Churn counts are
// deterministic (greedy strategy, fixed seeds); wall-clock is averaged
// over the whole series to keep runner noise out of the comparison.
#include <chrono>
#include <cstdio>
#include <random>

#include "bench_common.h"
#include "core/epoch_pipeline.h"
#include "net/routing.h"
#include "traffic/flow_classes.h"
#include "vnf/nf_types.h"

namespace {

using namespace apple;

constexpr double kDrift = 0.10;        // per-entry perturbation bound
constexpr std::size_t kSnapshots = 8;  // perturbed snapshots per topology

double now_seconds(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Deterministic per-snapshot perturbation: entry (i, j) of snapshot t is
// the base entry scaled by U[1-kDrift, 1+kDrift] drawn from a seeded
// generator, so every run (and every machine) sees the same series.
traffic::TrafficMatrix perturb(const traffic::TrafficMatrix& base,
                               std::size_t snapshot_index) {
  std::mt19937_64 rng(1000 + snapshot_index);
  std::uniform_real_distribution<double> factor(1.0 - kDrift, 1.0 + kDrift);
  traffic::TrafficMatrix out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = 0; j < base.size(); ++j) {
      out.set(i, j, base.at(i, j) * factor(rng));
    }
  }
  return out;
}

std::uint64_t total_rule_entries(const core::Epoch& epoch) {
  std::uint64_t total = 0;
  for (const auto& plans : epoch.subclasses) {
    total += core::rule_entries_for(plans);
  }
  return total;
}

// Makespan of tearing the previous epoch down and booting the next from
// scratch: all boots run in parallel (slowest image dominates), then every
// class's rules are installed serially.
double full_reinstall_latency(const core::Epoch& next,
                              const orch::OrchestrationTimings& timings) {
  double boot = 0.0;
  for (std::size_t n = 0; n < vnf::kNumNfTypes; ++n) {
    bool present = false;
    for (const auto& counts : next.plan.instance_count) {
      if (counts[n] > 0) present = true;
    }
    if (!present) continue;
    const auto& spec = vnf::spec_of(static_cast<vnf::NfType>(n));
    boot = std::max(boot, spec.clickos ? timings.clickos_boot_openstack_mean()
                                       : timings.normal_vm_boot);
  }
  return boot + timings.rule_install *
                    static_cast<double>(next.classes.size());
}

struct SeriesResult {
  std::string label;
  std::size_t classes = 0;
  double full_s = 0.0, incremental_s = 0.0;
  std::uint64_t full_instance_churn = 0, incremental_instance_churn = 0;
  std::uint64_t full_rule_churn = 0, incremental_rule_churn = 0;
  double full_latency_s = 0.0, incremental_latency_s = 0.0;  // modeled, mean
  std::size_t pinned = 0, resolved = 0;                      // totals
  std::size_t fallbacks = 0;
};

SeriesResult run_series(const std::string& label, const net::Topology& topo,
                        double total_mbps) {
  const net::AllPairsPaths routing(topo);
  const auto chains = vnf::default_policy_chains();
  const auto assignment = bench::evaluation_chain_assignment(chains.size());
  const traffic::TrafficMatrix base = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = total_mbps});

  core::PipelineOptions options;
  options.engine.strategy = core::PlacementStrategy::kGreedy;
  const core::EpochPipeline pipeline(options);
  const orch::OrchestrationTimings& timings = pipeline.options().timings;

  core::Epoch seed = pipeline.run(
      topo, chains, traffic::build_classes(topo, routing, base, assignment));

  SeriesResult result;
  result.label = label;
  result.classes = seed.classes.size();

  // Full path: re-assemble every snapshot's epoch from scratch. Churn is a
  // complete reinstall — the previous fleet retires, the next one boots,
  // every rule is rewritten.
  {
    core::Epoch prev = seed;
    for (std::size_t t = 0; t < kSnapshots; ++t) {
      auto classes = traffic::build_classes(topo, routing, perturb(base, t),
                                            assignment);
      const auto t0 = std::chrono::steady_clock::now();
      core::Epoch next = pipeline.run(topo, chains, std::move(classes));
      result.full_s += now_seconds(t0);
      result.full_instance_churn +=
          prev.plan.total_instances() + next.plan.total_instances();
      result.full_rule_churn +=
          total_rule_entries(prev) + total_rule_entries(next);
      result.full_latency_s += full_reinstall_latency(next, timings);
      prev = std::move(next);
    }
    result.full_latency_s /= static_cast<double>(kSnapshots);
  }

  // Incremental path: advance through the same series via the delta
  // stages; only dirty classes are re-solved and only churned instances
  // and rules are charged.
  {
    core::Epoch prev = std::move(seed);
    for (std::size_t t = 0; t < kSnapshots; ++t) {
      auto classes = traffic::build_classes(topo, routing, perturb(base, t),
                                            assignment);
      const auto t0 = std::chrono::steady_clock::now();
      core::IncrementalEpoch inc =
          pipeline.advance(prev, topo, chains, std::move(classes));
      result.incremental_s += now_seconds(t0);
      result.incremental_instance_churn += inc.plan_delta.instances_launched +
                                           inc.plan_delta.instances_retired +
                                           inc.plan_delta.instances_reconfigured;
      result.incremental_rule_churn +=
          inc.rule_delta.rules_installed + inc.rule_delta.rules_removed;
      result.incremental_latency_s += inc.control_latency_s;
      result.pinned += inc.plan_delta.pinned_classes.size();
      result.resolved += inc.plan_delta.resolved_classes.size();
      if (inc.full_recompute) ++result.fallbacks;
      prev = std::move(inc.epoch);
    }
    result.incremental_latency_s /= static_cast<double>(kSnapshots);
  }
  return result;
}

}  // namespace

int main() {
  // A crashing APPLE_CHECK mid-series still leaves a flight journal for CI
  // to upload (DESIGN.md Sec. 13).
  obs::install_flight_crash_dump();
  bench::print_header(
      "Re-optimization: full recompute vs incremental pipeline (Sec. VI)");
  std::printf("%zu snapshots/topology, per-entry drift U[%.2f, %.2f], "
              "pin threshold %.0f%%, greedy strategy\n",
              kSnapshots, 1.0 - kDrift, 1.0 + kDrift,
              core::ClassDeltaOptions{}.rate_change_threshold * 100.0);
  std::printf("\n%-10s %-8s %-10s %-10s %-8s %-13s %-13s %-14s\n", "Topology",
              "Classes", "full (s)", "incr (s)", "Speedup", "Inst churn",
              "Rule churn", "Pinned/step");
  bench::print_rule();

  std::vector<SeriesResult> rows;
  rows.push_back(run_series("Internet2", net::make_internet2(), 1200.0));
  rows.push_back(run_series("GEANT", net::make_geant(), 4000.0));

  for (const SeriesResult& r : rows) {
    const double speedup =
        r.incremental_s > 0.0 ? r.full_s / r.incremental_s : 0.0;
    std::printf(
        "%-10s %-8zu %-10.4f %-10.4f %-8.2f %-13s %-13s %-14s\n",
        r.label.c_str(), r.classes, r.full_s, r.incremental_s, speedup,
        (std::to_string(r.full_instance_churn) + "/" +
         std::to_string(r.incremental_instance_churn))
            .c_str(),
        (std::to_string(r.full_rule_churn) + "/" +
         std::to_string(r.incremental_rule_churn))
            .c_str(),
        (std::to_string(r.pinned / kSnapshots) + " of " +
         std::to_string(r.classes))
            .c_str());
  }

  std::printf("\n%-10s %-22s %-22s %-10s\n", "Topology",
              "full makespan (s)", "incr makespan (s)", "Fallbacks");
  bench::print_rule();
  for (const SeriesResult& r : rows) {
    std::printf("%-10s %-22.3f %-22.3f %-10zu\n", r.label.c_str(),
                r.full_latency_s, r.incremental_latency_s, r.fallbacks);
  }
  std::printf(
      "\nChurn columns are full/incremental totals over the series: full\n"
      "reinstall retires and reboots the whole fleet (and rewrites every\n"
      "rule) each epoch, the incremental path only touches the PlanDelta/\n"
      "RuleDelta ops. Makespan is the modeled Figs. 5/7 control latency\n"
      "(parallel boots + serial rule installs), averaged per snapshot.\n");

  bench::export_metrics_json("reoptimize");
  bench::export_flight_json("reoptimize");

  // Acceptance gate (GEANT, <=10% drift): the incremental path must win
  // wall-clock and churn strictly fewer instances and rules than a full
  // reinstall.
  const SeriesResult& geant = rows.back();
  bool ok = true;
  if (geant.incremental_s >= geant.full_s) {
    std::fprintf(stderr,
                 "error: incremental wall-clock %.4fs did not beat full "
                 "recompute %.4fs on GEANT\n",
                 geant.incremental_s, geant.full_s);
    ok = false;
  }
  if (geant.incremental_instance_churn >= geant.full_instance_churn) {
    std::fprintf(stderr,
                 "error: incremental instance churn %llu not below full "
                 "reinstall %llu on GEANT\n",
                 static_cast<unsigned long long>(
                     geant.incremental_instance_churn),
                 static_cast<unsigned long long>(geant.full_instance_churn));
    ok = false;
  }
  if (geant.incremental_rule_churn >= geant.full_rule_churn) {
    std::fprintf(stderr,
                 "error: incremental rule churn %llu not below full "
                 "reinstall %llu on GEANT\n",
                 static_cast<unsigned long long>(geant.incremental_rule_churn),
                 static_cast<unsigned long long>(geant.full_rule_churn));
    ok = false;
  }
  return ok ? 0 : 1;
}
