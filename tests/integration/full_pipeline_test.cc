// Integration tests exercising the whole APPLE stack together, across all
// evaluation topologies: optimize -> place -> sub-classes -> rules ->
// packet walks -> replay with failover. These are the repository's
// "does the system as a whole uphold the paper's three properties" tests.
#include <gtest/gtest.h>

#include <random>

#include "baselines/ingress.h"
#include "core/apple_controller.h"
#include "core/rule_generator.h"
#include "net/topologies.h"

namespace apple {
namespace {

struct TopoParam {
  const char* label;
  net::Topology (*make)(double);
  double total_mbps;
};

class PipelineOnTopology : public ::testing::TestWithParam<TopoParam> {};

core::ControllerConfig fast_config() {
  core::ControllerConfig cfg;
  cfg.engine.strategy = core::PlacementStrategy::kGreedy;
  cfg.snapshot_duration = 0.3;
  cfg.tick = 0.05;
  cfg.poll_interval = 0.1;
  cfg.policied_fraction = 0.5;
  return cfg;
}

TEST_P(PipelineOnTopology, EpochUpholdsAllConstraints) {
  const TopoParam& param = GetParam();
  const net::Topology topo = param.make(net::kDefaultHostCores);
  const core::AppleController controller(topo, vnf::default_policy_chains(),
                                         fast_config());
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = param.total_mbps});
  const core::Epoch epoch = controller.optimize(tm);

  core::PlacementInput input;
  input.topology = &topo;
  input.classes = epoch.classes;
  input.chains = controller.chains();
  EXPECT_EQ(core::check_plan(input, epoch.plan), "");

  // Sub-class weights are a probability distribution per class.
  for (const auto& plans : epoch.subclasses) {
    double weight = 0.0;
    for (const auto& sub : plans) weight += sub.weight;
    EXPECT_NEAR(weight, 1.0, 1e-6);
  }
  // Tagging always beats per-path classification.
  EXPECT_LT(epoch.rules.tcam_with_tagging, epoch.rules.tcam_without_tagging);
}

TEST_P(PipelineOnTopology, PacketWalksEnforceEveryChain) {
  const TopoParam& param = GetParam();
  const net::Topology topo = param.make(net::kDefaultHostCores);
  const core::AppleController controller(topo, vnf::default_policy_chains(),
                                         fast_config());
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = param.total_mbps});
  const core::Epoch epoch = controller.optimize(tm);

  core::PlacementInput input;
  input.topology = &topo;
  input.classes = epoch.classes;
  input.chains = controller.chains();
  dataplane::DataPlane dp(topo);
  core::RuleGenerator().install(input, epoch.subclasses, epoch.inventory, dp);

  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint32_t> salt(0, 1u << 30);
  for (const traffic::TrafficClass& cls : epoch.classes) {
    hsa::PacketHeader h;
    h.src_ip = salt(rng);
    h.dst_ip = salt(rng);
    h.src_port = static_cast<std::uint16_t>(salt(rng));
    h.dst_port = 443;
    h.proto = 6;
    const auto walk = dp.walk(cls.id, h);
    ASSERT_TRUE(walk.delivered) << param.label << " class " << cls.id << ": "
                                << walk.error;
    EXPECT_EQ(dp.traversed_types(walk.packet),
              controller.chains()[cls.chain_id]);
    EXPECT_EQ(walk.packet.switch_trace, cls.path);
  }
}

TEST_P(PipelineOnTopology, SteadyReplayIsLossFree) {
  const TopoParam& param = GetParam();
  const net::Topology topo = param.make(net::kDefaultHostCores);
  const core::AppleController controller(topo, vnf::default_policy_chains(),
                                         fast_config());
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = param.total_mbps});
  const core::Epoch epoch = controller.optimize(tm);
  const std::vector<traffic::TrafficMatrix> series(3, tm);
  const core::ReplayReport report = controller.replay(epoch, series, true);
  EXPECT_NEAR(report.mean_loss, 0.0, 1e-9) << param.label;
}

TEST_P(PipelineOnTopology, AppleNeverUsesMoreCoresThanPerClassIngress) {
  const TopoParam& param = GetParam();
  const net::Topology topo = param.make(net::kDefaultHostCores);
  const core::AppleController controller(topo, vnf::default_policy_chains(),
                                         fast_config());
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = param.total_mbps});
  const core::Epoch epoch = controller.optimize(tm);

  core::PlacementInput input;
  input.topology = &topo;
  input.classes = epoch.classes;
  input.chains = controller.chains();
  const core::PlacementPlan strawman = baseline::place_ingress(input);
  EXPECT_LE(epoch.plan.total_cores(), strawman.total_cores());
}

INSTANTIATE_TEST_SUITE_P(
    Evaluation, PipelineOnTopology,
    ::testing::Values(TopoParam{"Internet2", net::make_internet2, 4000.0},
                      TopoParam{"GEANT", net::make_geant, 8000.0},
                      TopoParam{"UNIV1", net::make_univ1, 8000.0}),
    [](const auto& param_info) { return std::string(param_info.param.label); });

TEST(PipelineLarge, As3679EndToEnd) {
  // The scalability case: 79 switches, thousands of classes, greedy
  // placement, full sub-class + rule generation.
  const net::Topology topo = net::make_as3679();
  core::ControllerConfig cfg = fast_config();
  const core::AppleController controller(topo, vnf::default_policy_chains(),
                                         cfg);
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = 30000.0});
  const core::Epoch epoch = controller.optimize(tm);
  EXPECT_GT(epoch.classes.size(), 1000u);
  EXPECT_TRUE(epoch.plan.feasible);
  core::PlacementInput input;
  input.topology = &topo;
  input.classes = epoch.classes;
  input.chains = controller.chains();
  EXPECT_EQ(core::check_plan(input, epoch.plan), "");
  EXPECT_GT(epoch.rules.tcam_reduction_ratio(), 1.0);
}

TEST(PipelineReoptimization, SegmentedReplayTracksDiurnalPattern) {
  const net::Topology topo = net::make_internet2();
  core::ControllerConfig cfg = fast_config();
  cfg.reoptimize_every = 8;
  const core::AppleController controller(topo, vnf::default_policy_chains(),
                                         cfg);
  const traffic::TrafficMatrix base = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = 6000.0});
  traffic::DiurnalConfig diurnal;
  diurnal.num_snapshots = 24;
  diurnal.snapshots_per_day = 24;
  diurnal.diurnal_amplitude = 0.5;
  diurnal.noise_sigma = 0.0;  // pure pattern
  const auto series = traffic::make_diurnal_series(base, diurnal);
  const core::Epoch epoch = controller.optimize(traffic::mean_matrix(series));

  const core::ReplayReport segmented = controller.replay(epoch, series, false);
  EXPECT_EQ(segmented.epochs, 3u);

  core::ControllerConfig fixed_cfg = cfg;
  fixed_cfg.reoptimize_every = 0;
  const core::AppleController fixed(topo, vnf::default_policy_chains(),
                                    fixed_cfg);
  const core::ReplayReport stale = fixed.replay(epoch, series, false);
  EXPECT_EQ(stale.epochs, 1u);
  // Tracking the predictable pattern strictly reduces loss (Sec. VI).
  EXPECT_LE(segmented.mean_loss, stale.mean_loss);
}

}  // namespace
}  // namespace apple
