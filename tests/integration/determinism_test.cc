// End-to-end determinism regression: the properties apple_analyze guards
// statically, asserted dynamically. A small GEANT epoch is computed twice
// in the same process — same topology, same traffic matrix, same config —
// and every derived artifact must be byte-identical across the runs:
//
//   * the serialized placement plan (instance counts, distributions,
//     sub-class plans, id counters),
//   * the installed rule table (per-class plans and TCAM accounting as the
//     data plane holds them),
//   * the metrics snapshot (every counter and histogram, under an injected
//     constant clock so durations cannot leak wall time).
//
// If an unordered-container walk, ambient clock read, or unseeded RNG
// sneaks back into the pipeline, this test fails even when the static
// analyzer's heuristics miss the site.
#include <gtest/gtest.h>

#include <string>

#include "core/apple_controller.h"
#include "core/rule_generator.h"
#include "net/topologies.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace apple {
namespace {

void write_subclass_plans(obs::json::Writer& w,
                          const std::vector<dataplane::SubclassPlan>& plans) {
  w.begin_array();
  for (const dataplane::SubclassPlan& sub : plans) {
    w.begin_object();
    w.key("class_id");
    w.value(static_cast<std::uint64_t>(sub.class_id));
    w.key("subclass_id");
    w.value(static_cast<std::uint64_t>(sub.subclass_id));
    w.key("weight");
    w.value(sub.weight);
    w.key("prefix_rules");
    w.value(static_cast<std::uint64_t>(sub.classifier_prefix_rules));
    w.key("itinerary");
    w.begin_array();
    for (const dataplane::HostVisit& visit : sub.itinerary) {
      w.begin_object();
      w.key("at_switch");
      w.value(static_cast<std::uint64_t>(visit.at_switch));
      w.key("instances");
      w.begin_array();
      for (const vnf::InstanceId id : visit.instances) {
        w.value(static_cast<std::uint64_t>(id));
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

// Serializes the decision content of an epoch. Deliberately excludes
// plan.solve_seconds: wall-clock measurement metadata, not part of the
// deterministic plan contract.
std::string serialize_epoch(const core::Epoch& epoch) {
  obs::json::Writer w;
  w.begin_object();
  w.key("classes");
  w.begin_array();
  for (const traffic::TrafficClass& cls : epoch.classes) {
    w.begin_object();
    w.key("id");
    w.value(static_cast<std::uint64_t>(cls.id));
    w.key("chain_id");
    w.value(static_cast<std::uint64_t>(cls.chain_id));
    w.key("rate_mbps");
    w.value(cls.rate_mbps);
    w.key("path");
    w.begin_array();
    for (const net::NodeId v : cls.path) {
      w.value(static_cast<std::uint64_t>(v));
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("plan");
  w.begin_object();
  w.key("feasible");
  w.value(epoch.plan.feasible);
  w.key("strategy");
  w.value(epoch.plan.strategy);
  w.key("total_instances");
  w.value(epoch.plan.total_instances());
  w.key("instance_count");
  w.begin_array();
  for (const auto& per_node : epoch.plan.instance_count) {
    w.begin_array();
    for (const std::uint32_t q : per_node) {
      w.value(static_cast<std::uint64_t>(q));
    }
    w.end_array();
  }
  w.end_array();
  w.key("distribution");
  w.begin_array();
  for (const core::ClassDistribution& dist : epoch.plan.distribution) {
    w.begin_array();
    for (const auto& row : dist.fraction) {
      w.begin_array();
      for (const double d : row) w.value(d);
      w.end_array();
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();

  w.key("inventory");
  w.begin_array();
  for (const auto& per_node : epoch.inventory.by_node_type) {
    w.begin_array();
    for (const auto& ids : per_node) {
      w.begin_array();
      for (const vnf::InstanceId id : ids) {
        w.value(static_cast<std::uint64_t>(id));
      }
      w.end_array();
    }
    w.end_array();
  }
  w.end_array();

  w.key("subclasses");
  w.begin_array();
  for (const auto& plans : epoch.subclasses) write_subclass_plans(w, plans);
  w.end_array();

  w.key("next_instance_id");
  w.value(static_cast<std::uint64_t>(epoch.next_instance_id));
  w.key("next_class_id");
  w.value(static_cast<std::uint64_t>(epoch.next_class_id));
  w.end_object();
  return w.take();
}

// Serializes the rule state as the data plane holds it after installation,
// plus the TCAM accounting of the rule generator.
std::string serialize_rule_table(const dataplane::DataPlane& dp,
                                 const core::RuleGenerationReport& report) {
  obs::json::Writer w;
  w.begin_object();
  w.key("tcam_with_tagging");
  w.value(static_cast<std::uint64_t>(report.tcam_with_tagging));
  w.key("tcam_without_tagging");
  w.value(static_cast<std::uint64_t>(report.tcam_without_tagging));
  w.key("vswitch_rules");
  w.value(static_cast<std::uint64_t>(report.vswitch_rules));
  w.key("classes");
  w.begin_array();
  for (const traffic::ClassId id : dp.class_ids()) {
    w.begin_object();
    w.key("id");
    w.value(static_cast<std::uint64_t>(id));
    w.key("path");
    w.begin_array();
    for (const net::NodeId v : dp.path_of(id)) {
      w.value(static_cast<std::uint64_t>(v));
    }
    w.end_array();
    w.key("plans");
    write_subclass_plans(w, dp.plans_of(id));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

struct EpochArtifacts {
  std::string plan;
  std::string rule_table;
  std::string metrics;
};

EpochArtifacts run_geant_epoch() {
  obs::MetricsRegistry& registry = obs::default_registry();
  registry.reset_values();
  // Constant injected clock: every span/timer duration becomes exactly 0.0
  // in both runs, so the metrics snapshot compares real instrumentation
  // counts without wall-clock noise.
  registry.set_clock([] { return 0.0; });

  const net::Topology topo = net::make_geant(net::kDefaultHostCores);
  core::ControllerConfig cfg;
  cfg.engine.strategy = core::PlacementStrategy::kGreedy;
  cfg.snapshot_duration = 0.3;
  cfg.tick = 0.05;
  cfg.poll_interval = 0.1;
  cfg.policied_fraction = 0.5;
  const core::AppleController controller(topo, vnf::default_policy_chains(),
                                         cfg);
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = 6000.0});
  const core::Epoch epoch = controller.optimize(tm);

  core::PlacementInput input;
  input.topology = &topo;
  input.classes = epoch.classes;
  input.chains = controller.chains();
  dataplane::DataPlane dp(topo);
  const core::RuleGenerationReport report =
      core::RuleGenerator().install(input, epoch.subclasses, epoch.inventory,
                                    dp);

  EpochArtifacts artifacts;
  artifacts.plan = serialize_epoch(epoch);
  artifacts.rule_table = serialize_rule_table(dp, report);
  artifacts.metrics = registry.snapshot_json();

  // Leave the process-wide registry as other tests expect to find it.
  registry.set_clock(obs::Clock(&obs::steady_clock_seconds));
  registry.reset_values();
  return artifacts;
}

TEST(DeterminismRegression, GeantEpochFlightJournalIsByteIdentical) {
  // The flight recorder's determinism contract (DESIGN.md Sec. 13): a
  // serial workload under an injected clock journals identically across
  // runs — event order, interned ids, epoch/span ids and timestamps all
  // derive from program order. reset() restarts the id streams, so the
  // second run replays into the same journal bytes.
  obs::EventLog& log = obs::default_event_log();
  const auto run_journal = [&log] {
    log.reset();
    log.set_clock([] { return 0.0; });
    (void)run_geant_epoch();
    std::string journal = log.journal_json();
    log.set_clock(obs::Clock(&obs::steady_clock_seconds));
    return journal;
  };
  const std::string first = run_journal();
  const std::string second = run_journal();
  EXPECT_EQ(first, second);

  // Not vacuous: the epoch actually recorded pipeline and rule events.
  const auto doc = obs::json::parse(first);
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* journal = doc->find("journal");
  ASSERT_NE(journal, nullptr);
  bool saw_epoch = false;
  bool saw_rules = false;
  for (const auto& name : journal->find("names")->items) {
    if (name.string == "core.pipeline.epoch") saw_epoch = true;
    if (name.string == "dataplane.rules.install") saw_rules = true;
  }
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_rules);
  std::uint64_t events = 0;
  for (const auto& thread : journal->find("threads")->items) {
    events += thread.find("events")->items.size();
  }
  EXPECT_GT(events, 0u);
  log.reset();
}

TEST(DeterminismRegression, GeantEpochArtifactsAreByteIdentical) {
  const EpochArtifacts first = run_geant_epoch();
  const EpochArtifacts second = run_geant_epoch();

  EXPECT_EQ(first.plan, second.plan);
  EXPECT_EQ(first.rule_table, second.rule_table);
  EXPECT_EQ(first.metrics, second.metrics);

  // Guard against vacuous passes: the artifacts must be real documents
  // describing a non-empty epoch.
  const auto plan_doc = obs::json::parse(first.plan);
  ASSERT_TRUE(plan_doc.has_value());
  EXPECT_FALSE(plan_doc->find("classes")->items.empty());
  EXPECT_GT(plan_doc->find("plan")->find("total_instances")->number, 0.0);
  const auto rules_doc = obs::json::parse(first.rule_table);
  ASSERT_TRUE(rules_doc.has_value());
  EXPECT_FALSE(rules_doc->find("classes")->items.empty());
  EXPECT_GT(rules_doc->find("tcam_with_tagging")->number, 0.0);
  const auto metrics_doc = obs::json::parse(first.metrics);
  ASSERT_TRUE(metrics_doc.has_value());
  EXPECT_FALSE(metrics_doc->find("counters")->keys.empty());
}

}  // namespace
}  // namespace apple
