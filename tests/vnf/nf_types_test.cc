#include "vnf/nf_types.h"

#include <gtest/gtest.h>

namespace apple::vnf {
namespace {

TEST(NfCatalog, MatchesTableIV) {
  const auto catalog = nf_catalog();
  ASSERT_EQ(catalog.size(), kNumNfTypes);
  // Firewall: 4 cores, 900 Mbps, ClickOS.
  EXPECT_DOUBLE_EQ(spec_of(NfType::kFirewall).cores_required, 4.0);
  EXPECT_DOUBLE_EQ(spec_of(NfType::kFirewall).capacity_mbps, 900.0);
  EXPECT_TRUE(spec_of(NfType::kFirewall).clickos);
  // Proxy: 4 cores, 900 Mbps, not ClickOS.
  EXPECT_DOUBLE_EQ(spec_of(NfType::kProxy).cores_required, 4.0);
  EXPECT_FALSE(spec_of(NfType::kProxy).clickos);
  // NAT: 2 cores, 900 Mbps, ClickOS.
  EXPECT_DOUBLE_EQ(spec_of(NfType::kNat).cores_required, 2.0);
  EXPECT_TRUE(spec_of(NfType::kNat).clickos);
  // IDS: 8 cores, 600 Mbps, not ClickOS.
  EXPECT_DOUBLE_EQ(spec_of(NfType::kIds).cores_required, 8.0);
  EXPECT_DOUBLE_EQ(spec_of(NfType::kIds).capacity_mbps, 600.0);
  EXPECT_FALSE(spec_of(NfType::kIds).clickos);
}

TEST(NfCatalog, SpecIndexMatchesType) {
  for (const NfSpec& spec : nf_catalog()) {
    EXPECT_EQ(&spec_of(spec.type), &spec);
  }
}

TEST(NfNames, RoundTrip) {
  EXPECT_EQ(to_string(NfType::kFirewall), "FW");
  EXPECT_EQ(to_string(NfType::kProxy), "Proxy");
  EXPECT_EQ(to_string(NfType::kNat), "NAT");
  EXPECT_EQ(to_string(NfType::kIds), "IDS");
}

TEST(PolicyChains, DefaultTemplatesAreValid) {
  const auto chains = default_policy_chains();
  ASSERT_GE(chains.size(), 4u);
  for (const PolicyChain& chain : chains) {
    EXPECT_FALSE(chain.empty());
    EXPECT_LE(chain.size(), kNumNfTypes);
    // No NF repeats within a chain (a packet never visits an instance
    // twice, Sec. V-B assumption).
    for (std::size_t i = 0; i < chain.size(); ++i) {
      for (std::size_t j = i + 1; j < chain.size(); ++j) {
        EXPECT_NE(chain[i], chain[j]);
      }
    }
  }
}

TEST(PolicyChains, IncludesPaperIntroChain) {
  // Intro example: firewall -> IDS -> web proxy.
  const PolicyChain want{NfType::kFirewall, NfType::kIds, NfType::kProxy};
  bool found = false;
  for (const PolicyChain& chain : default_policy_chains()) {
    if (chain == want) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PolicyChains, ChainToString) {
  const PolicyChain chain{NfType::kFirewall, NfType::kIds};
  EXPECT_EQ(chain_to_string(chain), "FW->IDS");
  EXPECT_EQ(chain_to_string({}), "");
}

}  // namespace
}  // namespace apple::vnf
