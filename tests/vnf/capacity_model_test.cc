#include "vnf/capacity_model.h"

#include <gtest/gtest.h>

namespace apple::vnf {
namespace {

TEST(LossFraction, ZeroBelowCapacity) {
  EXPECT_DOUBLE_EQ(loss_fraction(100.0, 900.0), 0.0);
  EXPECT_DOUBLE_EQ(loss_fraction(900.0, 900.0), 0.0);
  EXPECT_DOUBLE_EQ(loss_fraction(0.0, 900.0), 0.0);
  EXPECT_DOUBLE_EQ(loss_fraction(-5.0, 900.0), 0.0);
}

TEST(LossFraction, SoarsBeyondCapacity) {
  // Fig. 6 shape: loss climbs steeply once offered > capacity.
  EXPECT_DOUBLE_EQ(loss_fraction(1800.0, 900.0), 0.5);
  EXPECT_NEAR(loss_fraction(9000.0, 900.0), 0.9, 1e-12);
  EXPECT_GT(loss_fraction(1000.0, 900.0), 0.0);
}

TEST(LossFraction, ZeroCapacityDropsEverything) {
  EXPECT_DOUBLE_EQ(loss_fraction(10.0, 0.0), 1.0);
}

TEST(UnitConversion, PpsMbpsRoundTrip) {
  // 8.5 Kpps of 1500-byte packets = 102 Mbps.
  EXPECT_DOUBLE_EQ(pps_to_mbps(8500.0, 1500), 102.0);
  EXPECT_DOUBLE_EQ(mbps_to_pps(102.0, 1500), 8500.0);
  EXPECT_THROW(mbps_to_pps(1.0, 0), std::invalid_argument);
}

TEST(MonitorLossCurve, MatchesFig6Shape) {
  const auto curve = monitor_loss_curve(kMonitorCapacityPps, 15000.0, 31);
  ASSERT_EQ(curve.size(), 31u);
  EXPECT_DOUBLE_EQ(curve.front().offered_pps, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().offered_pps, 15000.0);
  // Monotone non-decreasing loss; zero below capacity, positive above.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].loss_rate, curve[i - 1].loss_rate);
    if (curve[i].offered_pps <= kMonitorCapacityPps) {
      EXPECT_DOUBLE_EQ(curve[i].loss_rate, 0.0);
    } else {
      EXPECT_GT(curve[i].loss_rate, 0.0);
    }
  }
  EXPECT_THROW(monitor_loss_curve(1000.0, 2000.0, 1), std::invalid_argument);
}

TEST(MeasureCapacity, FindsTrueCapacityWithinOneStep) {
  const double measured = measure_capacity_pps(8500.0, 100.0, 0.01);
  EXPECT_LE(measured, 8600.0);
  EXPECT_GE(measured, 8400.0);
  EXPECT_THROW(measure_capacity_pps(8500.0, 0.0, 0.01),
               std::invalid_argument);
}

TEST(MeasureCapacity, CoarseStepsUnderestimate) {
  const double coarse = measure_capacity_pps(8500.0, 2000.0, 0.01);
  EXPECT_LE(coarse, 8500.0);
  EXPECT_GT(coarse, 0.0);
}

}  // namespace
}  // namespace apple::vnf
