#include "orch/timings.h"

#include <gtest/gtest.h>

namespace apple::orch {
namespace {

TEST(LaunchTimeline, HasElevenFigureFiveSteps) {
  const OrchestrationTimings timings;
  const auto steps = openstack_launch_timeline(timings, 0);
  EXPECT_EQ(steps.size(), 11u);
  for (const LaunchStep& step : steps) {
    EXPECT_GE(step.duration_s, 0.0) << step.description;
  }
}

TEST(LaunchTimeline, DurationsSumToBootPlusRuleInstall) {
  const OrchestrationTimings timings;
  for (std::uint64_t seq : {0ULL, 7ULL, 99ULL}) {
    const auto steps = openstack_launch_timeline(timings, seq);
    double total = 0.0;
    for (const LaunchStep& step : steps) total += step.duration_s;
    EXPECT_NEAR(total,
                openstack_boot_time(timings, seq) + timings.rule_install,
                1e-9);
  }
}

TEST(LaunchTimeline, NetworkingPreparationDominates) {
  // Sec. VIII-B: steps 1-5 (orchestration hand-offs) are the reason the
  // boot takes seconds instead of ClickOS's native 30 ms.
  const OrchestrationTimings timings;
  const auto steps = openstack_launch_timeline(timings, 3);
  double prep = 0.0;
  for (int i = 0; i < 5; ++i) prep += steps[i].duration_s;
  double rest = 0.0;
  for (std::size_t i = 5; i < steps.size(); ++i) rest += steps[i].duration_s;
  EXPECT_GT(prep, rest);
  EXPECT_GT(prep, 100.0 * timings.clickos_boot_bare_xen);
}

}  // namespace
}  // namespace apple::orch
