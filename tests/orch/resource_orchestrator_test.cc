#include "orch/resource_orchestrator.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace apple::orch {
namespace {

using vnf::NfType;

class OrchestratorTest : public ::testing::Test {
 protected:
  OrchestratorTest() : topo_(net::make_line(3, /*host_cores=*/8.0)) {}

  net::Topology topo_;
};

TEST_F(OrchestratorTest, LaunchAllocatesCores) {
  ResourceOrchestrator orch(topo_);
  EXPECT_DOUBLE_EQ(orch.available_cores(0), 8.0);
  const auto result = orch.launch(NfType::kFirewall, 0, /*now=*/0.0);
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_DOUBLE_EQ(orch.available_cores(0), 4.0);  // FW needs 4 cores
  EXPECT_DOUBLE_EQ(orch.used_cores(0), 4.0);
  EXPECT_EQ(result.instance.type, NfType::kFirewall);
  EXPECT_EQ(result.instance.host_switch, 0u);
  EXPECT_DOUBLE_EQ(result.instance.capacity_mbps, 900.0);
}

TEST_F(OrchestratorTest, OpenStackBootTakesSeconds) {
  ResourceOrchestrator orch(topo_);
  const auto result =
      orch.launch(NfType::kFirewall, 0, 10.0, LaunchPath::kOpenStack);
  ASSERT_TRUE(result.ok());
  // Paper Sec. VIII-B: 3.9 - 4.6 s through OpenStack.
  EXPECT_GE(result.ready_at, 13.9);
  EXPECT_LE(result.ready_at, 14.6);
}

TEST_F(OrchestratorTest, BareXenBootIsMilliseconds) {
  ResourceOrchestrator orch(topo_);
  const auto result =
      orch.launch(NfType::kNat, 0, 10.0, LaunchPath::kBareXen);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.ready_at, 10.030, 1e-9);
}

TEST_F(OrchestratorTest, NormalVmBootIsSlow) {
  ResourceOrchestrator orch(topo_);
  const auto result = orch.launch(NfType::kIds, 0, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.ready_at, orch.timings().normal_vm_boot);
}

TEST_F(OrchestratorTest, NonClickOsCannotTakeFastPath) {
  ResourceOrchestrator orch(topo_);
  const auto result =
      orch.launch(NfType::kIds, 0, 0.0, LaunchPath::kBareXen);
  EXPECT_EQ(result.status, LaunchStatus::kNotReconfigurable);
  EXPECT_DOUBLE_EQ(orch.used_cores(0), 0.0);  // nothing allocated
}

TEST_F(OrchestratorTest, ResourceExhaustion) {
  ResourceOrchestrator orch(topo_);
  ASSERT_TRUE(orch.launch(NfType::kFirewall, 0, 0.0).ok());  // 4 of 8
  ASSERT_TRUE(orch.launch(NfType::kNat, 0, 0.0).ok());       // 6 of 8
  const auto result = orch.launch(NfType::kFirewall, 0, 0.0);
  EXPECT_EQ(result.status, LaunchStatus::kInsufficientResources);
  // A 2-core NAT still fits.
  EXPECT_TRUE(orch.launch(NfType::kNat, 0, 0.0).ok());
  EXPECT_DOUBLE_EQ(orch.available_cores(0), 0.0);
}

TEST_F(OrchestratorTest, LaunchValidation) {
  ResourceOrchestrator orch(topo_);
  EXPECT_EQ(orch.launch(NfType::kNat, 99, 0.0).status,
            LaunchStatus::kUnknownHost);
  net::Topology bare;
  bare.add_node("no-host", 0.0);
  ResourceOrchestrator orch2(bare);
  EXPECT_EQ(orch2.launch(NfType::kNat, 0, 0.0).status,
            LaunchStatus::kNoAppleHost);
}

TEST_F(OrchestratorTest, CancelReleasesResources) {
  ResourceOrchestrator orch(topo_);
  const auto result = orch.launch(NfType::kIds, 1, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(orch.available_cores(1), 0.0);  // IDS: 8 cores
  EXPECT_TRUE(orch.cancel(result.instance.id));
  EXPECT_DOUBLE_EQ(orch.available_cores(1), 8.0);
  EXPECT_FALSE(orch.cancel(result.instance.id));  // already gone
  EXPECT_EQ(orch.num_instances(), 0u);
}

TEST_F(OrchestratorTest, ReconfigureSwapsClickOsTypes) {
  ResourceOrchestrator orch(topo_);
  const auto fw = orch.launch(NfType::kFirewall, 0, 0.0);
  ASSERT_TRUE(fw.ok());
  const auto result = orch.reconfigure(fw.instance.id, NfType::kNat, 100.0);
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_NEAR(result.ready_at, 100.030, 1e-9);  // 30 ms (Sec. VIII-D)
  EXPECT_EQ(result.instance.type, NfType::kNat);
  EXPECT_DOUBLE_EQ(orch.used_cores(0), 2.0);  // NAT releases 2 cores
}

TEST_F(OrchestratorTest, ReconfigureRejectsNonClickOs) {
  ResourceOrchestrator orch(topo_);
  const auto ids = orch.launch(NfType::kIds, 0, 0.0);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(orch.reconfigure(ids.instance.id, NfType::kNat, 0.0).status,
            LaunchStatus::kNotReconfigurable);
  const auto fw = orch.launch(NfType::kFirewall, 1, 0.0);
  EXPECT_EQ(orch.reconfigure(fw.instance.id, NfType::kIds, 0.0).status,
            LaunchStatus::kNotReconfigurable);
  EXPECT_EQ(orch.reconfigure(4242, NfType::kNat, 0.0).status,
            LaunchStatus::kUnknownInstance);
}

TEST_F(OrchestratorTest, InstanceLookupAndPerHostListing) {
  ResourceOrchestrator orch(topo_);
  const auto a = orch.launch(NfType::kNat, 0, 0.0);
  const auto b = orch.launch(NfType::kNat, 0, 0.0);
  const auto c = orch.launch(NfType::kNat, 1, 0.0);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(orch.instances_at(0).size(), 2u);
  EXPECT_EQ(orch.instances_at(1).size(), 1u);
  EXPECT_EQ(orch.instances_at(2).size(), 0u);
  ASSERT_TRUE(orch.instance(a.instance.id).has_value());
  EXPECT_EQ(orch.instance(a.instance.id)->host_switch, 0u);
  EXPECT_FALSE(orch.instance(999).has_value());
}

TEST_F(OrchestratorTest, FailInstanceReleasesCoresButRemembersTheId) {
  ResourceOrchestrator orch(topo_);
  const auto fw = orch.launch(NfType::kFirewall, 0, 0.0);
  ASSERT_TRUE(fw.ok());
  EXPECT_TRUE(orch.is_alive(fw.instance.id));

  EXPECT_TRUE(orch.fail_instance(fw.instance.id));
  EXPECT_FALSE(orch.is_alive(fw.instance.id));
  EXPECT_EQ(orch.num_failed(), 1u);
  EXPECT_DOUBLE_EQ(orch.used_cores(0), 0.0);  // the VM is gone
  // Crashed != never existed: the id is still remembered as failed.
  EXPECT_FALSE(orch.fail_instance(fw.instance.id));  // already failed
  EXPECT_FALSE(orch.fail_instance(999));             // never existed
  EXPECT_FALSE(orch.is_alive(999));
}

TEST_F(OrchestratorTest, DownHostRejectsLaunchAndAdopt) {
  ResourceOrchestrator orch(topo_);
  orch.set_host_down(1, true);
  EXPECT_TRUE(orch.host_down(1));
  EXPECT_FALSE(orch.host_down(0));

  EXPECT_EQ(orch.launch(NfType::kNat, 1, 0.0).status,
            LaunchStatus::kHostDown);

  vnf::VnfInstance carried;
  carried.id = 50;
  carried.type = NfType::kNat;
  carried.host_switch = 1;
  EXPECT_EQ(orch.adopt(carried).status, LaunchStatus::kHostDown);

  // Repair: the same host serves launches again.
  orch.set_host_down(1, false);
  EXPECT_TRUE(orch.launch(NfType::kNat, 1, 0.0).ok());
}

TEST_F(OrchestratorTest, BootHookCanFailTheLaunchAndReleaseResources) {
  ResourceOrchestrator orch(topo_);
  int consulted = 0;
  orch.set_boot_hook([&](const vnf::VnfInstance& inst, LaunchPath path,
                         double now, double planned) {
    ++consulted;
    EXPECT_EQ(inst.type, NfType::kFirewall);
    EXPECT_EQ(path, LaunchPath::kBareXen);
    EXPECT_DOUBLE_EQ(now, 5.0);
    EXPECT_GT(planned, 0.0);
    return BootOutcome{.fail = true};
  });
  const auto r = orch.launch(NfType::kFirewall, 0, 5.0, LaunchPath::kBareXen);
  EXPECT_EQ(r.status, LaunchStatus::kBootFailure);
  EXPECT_EQ(consulted, 1);
  EXPECT_DOUBLE_EQ(orch.used_cores(0), 0.0);  // nothing leaked
  EXPECT_EQ(orch.num_instances(), 0u);

  orch.set_boot_hook(nullptr);  // cleared hook: launches are clean again
  EXPECT_TRUE(orch.launch(NfType::kFirewall, 0, 6.0,
                          LaunchPath::kBareXen).ok());
}

TEST_F(OrchestratorTest, BootHookMultiplierStretchesReadyAt) {
  ResourceOrchestrator orch(topo_);
  orch.set_boot_hook([](const vnf::VnfInstance&, LaunchPath, double,
                        double) {
    return BootOutcome{.boot_multiplier = 10.0};
  });
  const auto r = orch.launch(NfType::kNat, 0, 1.0, LaunchPath::kBareXen);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ready_at, 1.0 + 10.0 * orch.timings().clickos_boot_bare_xen,
              1e-9);
}

TEST_F(OrchestratorTest, PeekNextIdTracksTheCounter) {
  ResourceOrchestrator orch(topo_);
  const vnf::InstanceId before = orch.peek_next_id();
  const auto r = orch.launch(NfType::kNat, 0, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.instance.id, before);
  EXPECT_EQ(orch.peek_next_id(), before + 1);

  // Adoption advances the counter past carried-forward ids.
  vnf::VnfInstance carried;
  carried.id = before + 10;
  carried.type = NfType::kNat;
  carried.host_switch = 1;
  ASSERT_TRUE(orch.adopt(carried).ok());
  EXPECT_EQ(orch.peek_next_id(), before + 11);
}

TEST(OpenStackBootTime, StaysInMeasuredBandAndVaries) {
  const OrchestrationTimings t;
  double lo = 1e9, hi = 0.0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const double b = openstack_boot_time(t, i);
    EXPECT_GE(b, t.clickos_boot_openstack_min);
    EXPECT_LE(b, t.clickos_boot_openstack_max);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_GT(hi - lo, 0.3);  // spread covers most of the band
  EXPECT_DOUBLE_EQ(openstack_boot_time(t, 7), openstack_boot_time(t, 7));
}

}  // namespace
}  // namespace apple::orch
