// Death tests for the APPLE contract-check library (common/check.h): the
// failure path aborts with a file:line diagnostic, operand values are
// printed, the failure handler is replaceable, and passing checks are free
// of side effects on control flow.
#include "common/check.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace {

TEST(Check, PassingChecksDoNothing) {
  APPLE_CHECK(true);
  APPLE_CHECK(1 + 1 == 2);
  APPLE_CHECK_EQ(4, 4);
  APPLE_CHECK_NE(4, 5);
  APPLE_CHECK_LT(1, 2);
  APPLE_CHECK_LE(2, 2);
  APPLE_CHECK_GT(3, 2);
  APPLE_CHECK_GE(3, 3);
  APPLE_DCHECK(true);
  APPLE_DCHECK_EQ(std::string("a"), std::string("a"));
}

TEST(Check, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  const auto next = [&calls] { return ++calls; };
  APPLE_CHECK_GE(next(), 1);
  EXPECT_EQ(calls, 1);
  APPLE_CHECK_LE(0, next());
  EXPECT_EQ(calls, 2);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailureAbortsWithFileAndLine) {
  EXPECT_DEATH(APPLE_CHECK(false), "check_test.cc:[0-9]+: check failed: false");
}

TEST(CheckDeathTest, BinaryFailurePrintsOperands) {
  const int lhs = 3;
  const int rhs = 4;
  EXPECT_DEATH(APPLE_CHECK_EQ(lhs, rhs),
               "check failed: lhs == rhs \\(3 vs 4\\)");
  EXPECT_DEATH(APPLE_CHECK_GT(lhs, rhs), "\\(3 vs 4\\)");
}

TEST(CheckDeathTest, StringOperandsPrint) {
  const std::string a = "apple";
  const std::string b = "paper";
  EXPECT_DEATH(APPLE_CHECK_EQ(a, b), "\\(apple vs paper\\)");
}

#if defined(APPLE_ENABLE_CHECKS) && APPLE_ENABLE_CHECKS
TEST(CheckDeathTest, DcheckIsFatalWhenChecksEnabled) {
  EXPECT_DEATH(APPLE_DCHECK(false), "check failed: false");
  EXPECT_DEATH(APPLE_DCHECK_LT(2, 1), "\\(2 vs 1\\)");
}
#else
TEST(Check, DcheckCompiledOutWhenChecksDisabled) {
  int evaluations = 0;
  APPLE_DCHECK(++evaluations > 0);       // must not evaluate
  APPLE_DCHECK_EQ(++evaluations, 1234);  // must not evaluate or fail
  EXPECT_EQ(evaluations, 0);
}
#endif

// RAII guard so a throwing handler never leaks into later tests.
class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(apple::common::set_check_failure_handler(
            [](const std::string& message) {
              throw std::runtime_error(message);
            })) {}
  ~ScopedThrowingHandler() {
    apple::common::set_check_failure_handler(previous_);
  }

 private:
  apple::common::CheckFailureHandler previous_;
};

TEST(Check, ReplaceableHandlerTurnsFailuresIntoExceptions) {
  ScopedThrowingHandler guard;
  EXPECT_THROW(APPLE_CHECK(false), std::runtime_error);
  try {
    APPLE_CHECK_EQ(2 + 2, 5);
    FAIL() << "check should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("(4 vs 5)"), std::string::npos) << what;
  }
}

TEST(Check, HandlerRestores) {
  { ScopedThrowingHandler guard; }
  // Back to the default aborting handler.
  EXPECT_DEATH(APPLE_CHECK(false), "check failed");
}

}  // namespace
