// Death tests for the APPLE contract-check library (common/check.h): the
// failure path aborts with a file:line diagnostic, operand values are
// printed, the failure handler is replaceable, passing checks are free of
// side effects on control flow, and failure observers (the flight-recorder
// crash-dump hook) fire on the abort path.
#include "common/check.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/json.h"

namespace {

TEST(Check, PassingChecksDoNothing) {
  APPLE_CHECK(true);
  APPLE_CHECK(1 + 1 == 2);
  APPLE_CHECK_EQ(4, 4);
  APPLE_CHECK_NE(4, 5);
  APPLE_CHECK_LT(1, 2);
  APPLE_CHECK_LE(2, 2);
  APPLE_CHECK_GT(3, 2);
  APPLE_CHECK_GE(3, 3);
  APPLE_DCHECK(true);
  APPLE_DCHECK_EQ(std::string("a"), std::string("a"));
}

TEST(Check, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  const auto next = [&calls] { return ++calls; };
  APPLE_CHECK_GE(next(), 1);
  EXPECT_EQ(calls, 1);
  APPLE_CHECK_LE(0, next());
  EXPECT_EQ(calls, 2);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailureAbortsWithFileAndLine) {
  EXPECT_DEATH(APPLE_CHECK(false), "check_test.cc:[0-9]+: check failed: false");
}

TEST(CheckDeathTest, BinaryFailurePrintsOperands) {
  const int lhs = 3;
  const int rhs = 4;
  EXPECT_DEATH(APPLE_CHECK_EQ(lhs, rhs),
               "check failed: lhs == rhs \\(3 vs 4\\)");
  EXPECT_DEATH(APPLE_CHECK_GT(lhs, rhs), "\\(3 vs 4\\)");
}

TEST(CheckDeathTest, StringOperandsPrint) {
  const std::string a = "apple";
  const std::string b = "paper";
  EXPECT_DEATH(APPLE_CHECK_EQ(a, b), "\\(apple vs paper\\)");
}

#if defined(APPLE_ENABLE_CHECKS) && APPLE_ENABLE_CHECKS
TEST(CheckDeathTest, DcheckIsFatalWhenChecksEnabled) {
  EXPECT_DEATH(APPLE_DCHECK(false), "check failed: false");
  EXPECT_DEATH(APPLE_DCHECK_LT(2, 1), "\\(2 vs 1\\)");
}
#else
TEST(Check, DcheckCompiledOutWhenChecksDisabled) {
  int evaluations = 0;
  APPLE_DCHECK(++evaluations > 0);       // must not evaluate
  APPLE_DCHECK_EQ(++evaluations, 1234);  // must not evaluate or fail
  EXPECT_EQ(evaluations, 0);
}
#endif

std::vector<std::filesystem::path> flight_dumps_with_prefix(
    const std::string& prefix) {
  std::vector<std::filesystem::path> dumps;
  for (const auto& entry :
       std::filesystem::directory_iterator(std::filesystem::current_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix + "_", 0) == 0) dumps.push_back(entry.path());
  }
  return dumps;
}

TEST(CheckDeathTest, AbortingCheckWritesFlightDump) {
  // The dying child process writes <prefix>_<its pid>.json; the parent
  // can't know that pid up front, so it pins a distinctive prefix and
  // globs afterwards.
  const std::string prefix = "flight_checkdeath";
  for (const auto& stale : flight_dumps_with_prefix(prefix)) {
    std::filesystem::remove(stale);
  }
  EXPECT_DEATH(
      {
        apple::obs::set_flight_dump_prefix(prefix);
        apple::obs::install_flight_crash_dump();
        apple::obs::EventLog& log = apple::obs::default_event_log();
        log.record(log.intern("obs.test.before_crash"),
                   apple::obs::EventPhase::kInstant, 42);
        APPLE_CHECK(false);
      },
      "check failed: false");

  const auto dumps = flight_dumps_with_prefix(prefix);
  ASSERT_EQ(dumps.size(), 1u) << "crash observer left no (or stale) dumps";
  std::ifstream in(dumps[0]);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  ASSERT_FALSE(text.empty());

  // The dump is a parseable journal that retained the pre-crash event.
  const auto doc = apple::obs::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  const apple::obs::json::Value* journal = doc->find("journal");
  ASSERT_NE(journal, nullptr);
  const apple::obs::json::Value* names = journal->find("names");
  ASSERT_NE(names, nullptr);
  bool found = false;
  for (const auto& name : names->items) {
    if (name.string == "obs.test.before_crash") found = true;
  }
  EXPECT_TRUE(found) << text;
  std::filesystem::remove(dumps[0]);
}

TEST(Check, ObserverRegistrationIsIdempotentAndBounded) {
  // Registering the same observer twice holds one slot; the fixed table
  // tolerates (ignores) overflow instead of failing the process.
  static int observer_calls = 0;
  (void)observer_calls;
  const auto observer = [] { ++observer_calls; };
  EXPECT_TRUE(apple::common::add_check_failure_observer(observer));
  EXPECT_TRUE(apple::common::add_check_failure_observer(observer));
}

// RAII guard so a throwing handler never leaks into later tests.
class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(apple::common::set_check_failure_handler(
            [](const std::string& message) {
              throw std::runtime_error(message);
            })) {}
  ~ScopedThrowingHandler() {
    apple::common::set_check_failure_handler(previous_);
  }

 private:
  apple::common::CheckFailureHandler previous_;
};

TEST(Check, ReplaceableHandlerTurnsFailuresIntoExceptions) {
  ScopedThrowingHandler guard;
  EXPECT_THROW(APPLE_CHECK(false), std::runtime_error);
  try {
    APPLE_CHECK_EQ(2 + 2, 5);
    FAIL() << "check should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("(4 vs 5)"), std::string::npos) << what;
  }
}

TEST(Check, HandlerRestores) {
  { ScopedThrowingHandler guard; }
  // Back to the default aborting handler.
  EXPECT_DEATH(APPLE_CHECK(false), "check failed");
}

}  // namespace
