#include "traffic/synthesis.h"

#include <gtest/gtest.h>

#include "traffic/stats.h"

namespace apple::traffic {
namespace {

TEST(GravityModel, HitsTargetTotal) {
  GravityModelConfig cfg;
  cfg.total_mbps = 12345.0;
  const TrafficMatrix tm = make_gravity_matrix(10, cfg);
  EXPECT_NEAR(tm.total(), 12345.0, 1e-6);
}

TEST(GravityModel, DeterministicForSeed) {
  const TrafficMatrix a = make_gravity_matrix(8, {.seed = 42});
  const TrafficMatrix b = make_gravity_matrix(8, {.seed = 42});
  const TrafficMatrix c = make_gravity_matrix(8, {.seed = 43});
  EXPECT_DOUBLE_EQ(a.at(1, 2), b.at(1, 2));
  EXPECT_NE(a.at(1, 2), c.at(1, 2));
}

TEST(GravityModel, AllOffDiagonalPositive) {
  const TrafficMatrix tm = make_gravity_matrix(6, {});
  for (std::size_t s = 0; s < 6; ++s) {
    for (std::size_t d = 0; d < 6; ++d) {
      if (s == d) {
        EXPECT_DOUBLE_EQ(tm.at(s, d), 0.0);
      } else {
        EXPECT_GT(tm.at(s, d), 0.0);
      }
    }
  }
}

TEST(GravityModel, RejectsTinyNetwork) {
  EXPECT_THROW(make_gravity_matrix(1, {}), std::invalid_argument);
}

TEST(DiurnalSeries, ProducesRequestedSnapshots) {
  const TrafficMatrix base = make_gravity_matrix(5, {});
  DiurnalConfig cfg;
  cfg.num_snapshots = 100;
  const auto series = make_diurnal_series(base, cfg);
  EXPECT_EQ(series.size(), 100u);
}

TEST(DiurnalSeries, MeanTracksBase) {
  const TrafficMatrix base = make_gravity_matrix(5, {.total_mbps = 5000.0});
  DiurnalConfig cfg;
  cfg.num_snapshots = 672;
  const auto series = make_diurnal_series(base, cfg);
  const TrafficMatrix mean = mean_matrix(series);
  // Diurnal factor averages to 1 over whole days; noise has mean 1.
  EXPECT_NEAR(mean.total(), base.total(), 0.05 * base.total());
}

TEST(DiurnalSeries, HasDayNightSwing) {
  const TrafficMatrix base = make_gravity_matrix(5, {});
  DiurnalConfig cfg;
  cfg.num_snapshots = 96;
  cfg.noise_sigma = 0.0;
  const auto series = make_diurnal_series(base, cfg);
  // Midnight trough vs mid-day peak.
  EXPECT_LT(series.front().total(), series[48].total());
  EXPECT_NEAR(series[48].total() / series.front().total(),
              (1.0 + cfg.diurnal_amplitude) / (1.0 - cfg.diurnal_amplitude),
              0.05);
}

TEST(BurstInjection, AmplifiesSomeEntries) {
  const TrafficMatrix base = make_gravity_matrix(6, {});
  DiurnalConfig dcfg;
  dcfg.num_snapshots = 200;
  dcfg.noise_sigma = 0.0;
  auto series = make_diurnal_series(base, dcfg);
  auto burst = series;
  BurstConfig bcfg;
  bcfg.probability = 0.2;
  inject_bursts(burst, bcfg);
  double amplified = 0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    if (burst[t].total() > series[t].total() * 1.01) ++amplified;
  }
  EXPECT_GT(amplified, 0);
}

TEST(BurstInjection, NoOpOnEmptySeries) {
  std::vector<TrafficMatrix> empty;
  inject_bursts(empty, {});  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(TraceReplay, HeavyTailedButFiniteMean) {
  TraceReplayConfig cfg;
  cfg.num_snapshots = 300;
  const auto series = make_trace_replay_series(23, cfg);
  ASSERT_EQ(series.size(), 300u);
  std::vector<double> totals;
  totals.reserve(series.size());
  for (const auto& tm : series) totals.push_back(tm.total());
  const double expected =
      cfg.mean_flow_mbps * static_cast<double>(cfg.flows_per_snapshot);
  // Pareto(1.5) has high variance; allow a generous band around the mean.
  EXPECT_NEAR(mean(totals), expected, 0.5 * expected);
  // Heavy tail: the max snapshot should clearly exceed the mean.
  EXPECT_GT(quantile(totals, 1.0), 1.2 * mean(totals));
}

}  // namespace
}  // namespace apple::traffic
