#include "traffic/flow_classes.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "traffic/stats.h"
#include "traffic/synthesis.h"

namespace apple::traffic {
namespace {

TEST(UniformChainAssignment, DeterministicAndInRange) {
  const auto assign = uniform_chain_assignment(4, 9);
  const auto a = assign(3, 7);
  const auto b = assign(3, 7);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);
  EXPECT_LT(a[0].first, 4u);
  EXPECT_DOUBLE_EQ(a[0].second, 1.0);
}

TEST(UniformChainAssignment, RejectsZeroChains) {
  EXPECT_THROW(uniform_chain_assignment(0), std::invalid_argument);
}

TEST(BuildClasses, OneClassPerActiveOdPair) {
  const net::Topology topo = net::make_line(4);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(4);
  tm.set(0, 3, 100.0);
  tm.set(1, 2, 50.0);
  const auto classes =
      build_classes(topo, routing, tm, uniform_chain_assignment(3));
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].src, 0u);
  EXPECT_EQ(classes[0].dst, 3u);
  EXPECT_EQ(classes[0].path, (net::Path{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(classes[0].rate_mbps, 100.0);
  EXPECT_EQ(classes[1].path, (net::Path{1, 2}));
}

TEST(BuildClasses, DropsTinyDemands) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(3);
  tm.set(0, 2, 1e-9);
  const auto classes =
      build_classes(topo, routing, tm, uniform_chain_assignment(2), 1e-3);
  EXPECT_TRUE(classes.empty());
}

TEST(BuildClasses, SplitsAcrossChains) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(3);
  tm.set(0, 2, 100.0);
  const ChainAssignment half_half = [](net::NodeId, net::NodeId) {
    return std::vector<std::pair<ChainId, double>>{{0, 0.5}, {1, 0.5}};
  };
  const auto classes = build_classes(topo, routing, tm, half_half);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].chain_id, 0u);
  EXPECT_EQ(classes[1].chain_id, 1u);
  EXPECT_DOUBLE_EQ(classes[0].rate_mbps + classes[1].rate_mbps, 100.0);
}

TEST(BuildClasses, SizeMismatchThrows) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  EXPECT_THROW(build_classes(topo, routing, TrafficMatrix(4),
                             uniform_chain_assignment(1)),
               std::invalid_argument);
}

TEST(BuildClasses, IdsAreDense) {
  const net::Topology topo = net::make_internet2();
  const net::AllPairsPaths routing(topo);
  const TrafficMatrix tm = make_gravity_matrix(topo.num_nodes(), {});
  const auto classes =
      build_classes(topo, routing, tm, uniform_chain_assignment(4));
  // Every OD pair active: 12*11 classes with dense ids.
  ASSERT_EQ(classes.size(), 132u);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    EXPECT_EQ(classes[i].id, static_cast<ClassId>(i));
  }
}

TEST(UpdateRates, TracksNewSnapshot) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(3);
  tm.set(0, 2, 100.0);
  const auto assign = uniform_chain_assignment(2);
  auto classes = build_classes(topo, routing, tm, assign);
  ASSERT_EQ(classes.size(), 1u);
  TrafficMatrix tm2(3);
  tm2.set(0, 2, 40.0);
  update_rates(classes, tm2, assign);
  EXPECT_DOUBLE_EQ(classes[0].rate_mbps, 40.0);
  // Path and identity unchanged.
  EXPECT_EQ(classes[0].path, (net::Path{0, 1, 2}));
}

TEST(TotalRate, SumsClasses) {
  std::vector<TrafficClass> classes(3);
  classes[0].rate_mbps = 1.0;
  classes[1].rate_mbps = 2.5;
  classes[2].rate_mbps = 4.0;
  EXPECT_DOUBLE_EQ(total_rate(classes), 7.5);
}

// Property: aggregated traffic is smoother than its parts (Sec. IV-A).
TEST(Aggregation, ReducesCoefficientOfVariation) {
  const TrafficMatrix base = make_gravity_matrix(8, {});
  DiurnalConfig cfg;
  cfg.num_snapshots = 300;
  cfg.diurnal_amplitude = 0.0;  // isolate stochastic noise
  cfg.noise_sigma = 0.4;
  const auto series = make_diurnal_series(base, cfg);
  // Per-OD CoV vs network-aggregate CoV.
  std::vector<double> od01, aggregate;
  for (const auto& tm : series) {
    od01.push_back(tm.at(0, 1));
    aggregate.push_back(tm.total());
  }
  EXPECT_LT(coefficient_of_variation(aggregate),
            coefficient_of_variation(od01));
}

}  // namespace
}  // namespace apple::traffic
