#include "traffic/flow_classes.h"

#include <gtest/gtest.h>

#include <set>

#include "net/topologies.h"
#include "traffic/stats.h"
#include "traffic/synthesis.h"

namespace apple::traffic {
namespace {

TEST(UniformChainAssignment, DeterministicAndInRange) {
  const auto assign = uniform_chain_assignment(4, 9);
  const auto a = assign(3, 7);
  const auto b = assign(3, 7);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);
  EXPECT_LT(a[0].first, 4u);
  EXPECT_DOUBLE_EQ(a[0].second, 1.0);
}

TEST(UniformChainAssignment, RejectsZeroChains) {
  EXPECT_THROW(uniform_chain_assignment(0), std::invalid_argument);
}

TEST(ChainMix, SpillsPastInlineCapacityWithoutReordering) {
  ChainMix mix;
  constexpr std::size_t kCount = ChainMix::kInlineCapacity * 3;
  for (std::size_t i = 0; i < kCount; ++i) {
    mix.push_back({static_cast<ChainId>(i), 1.0 / kCount});
  }
  ASSERT_EQ(mix.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(mix[i].first, static_cast<ChainId>(i));
  }
  // Equality spans the inline/overflow boundary.
  ChainMix same;
  for (const auto& item : mix) same.push_back(item);
  EXPECT_EQ(mix, same);
}

TEST(ScaledChainAssignment, FansOutDistinctChainsWithEqualShares) {
  const auto assign = scaled_chain_assignment(32, 18, /*seed=*/5);
  const auto mix = assign(3, 7);
  ASSERT_EQ(mix.size(), 18u);
  std::set<ChainId> distinct;
  double total = 0.0;
  for (const auto& [chain, share] : mix) {
    EXPECT_LT(chain, 32u);
    EXPECT_DOUBLE_EQ(share, 1.0 / 18.0);
    distinct.insert(chain);
    total += share;
  }
  EXPECT_EQ(distinct.size(), 18u);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(assign(3, 7), mix);  // pure function of (src, dst)
}

TEST(ScaledChainAssignment, SingleChainMatchesUniformShape) {
  const auto scaled = scaled_chain_assignment(4, 1, /*seed=*/9, 0.5);
  const auto uniform = uniform_chain_assignment(4, /*seed=*/9, 0.5);
  for (net::NodeId s = 0; s < 16; ++s) {
    for (net::NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      EXPECT_EQ(scaled(s, d), uniform(s, d)) << s << "->" << d;
    }
  }
}

TEST(ScaledChainAssignment, RejectsBadCatalogAndClampsFanOut) {
  EXPECT_THROW(scaled_chain_assignment(0, 1), std::invalid_argument);
  EXPECT_THROW(scaled_chain_assignment(4, 0), std::invalid_argument);
  // A fan-out wider than the catalog is clamped to distinct chains; each
  // still carries share 1/chains_per_pair (the remainder is unpolicied).
  const auto clamped = scaled_chain_assignment(4, 5);
  const auto mix = clamped(1, 2);
  ASSERT_EQ(mix.size(), 4u);
  double total = 0.0;
  for (const auto& [chain, share] : mix) total += share;
  EXPECT_NEAR(total, 4.0 / 5.0, 1e-12);
}

TEST(BuildClasses, OneClassPerActiveOdPair) {
  const net::Topology topo = net::make_line(4);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(4);
  tm.set(0, 3, 100.0);
  tm.set(1, 2, 50.0);
  const auto classes =
      build_classes(topo, routing, tm, uniform_chain_assignment(3));
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].src, 0u);
  EXPECT_EQ(classes[0].dst, 3u);
  EXPECT_EQ(classes[0].path, (net::Path{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(classes[0].rate_mbps, 100.0);
  EXPECT_EQ(classes[1].path, (net::Path{1, 2}));
}

TEST(BuildClasses, DropsTinyDemands) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(3);
  tm.set(0, 2, 1e-9);
  const auto classes =
      build_classes(topo, routing, tm, uniform_chain_assignment(2), 1e-3);
  EXPECT_TRUE(classes.empty());
}

TEST(BuildClasses, SplitsAcrossChains) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(3);
  tm.set(0, 2, 100.0);
  const ChainAssignment half_half = [](net::NodeId, net::NodeId) {
    return ChainMix{{0, 0.5}, {1, 0.5}};
  };
  const auto classes = build_classes(topo, routing, tm, half_half);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].chain_id, 0u);
  EXPECT_EQ(classes[1].chain_id, 1u);
  EXPECT_DOUBLE_EQ(classes[0].rate_mbps + classes[1].rate_mbps, 100.0);
}

TEST(BuildClasses, SizeMismatchThrows) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  EXPECT_THROW(build_classes(topo, routing, TrafficMatrix(4),
                             uniform_chain_assignment(1)),
               std::invalid_argument);
}

TEST(BuildClasses, IdsAreDense) {
  const net::Topology topo = net::make_internet2();
  const net::AllPairsPaths routing(topo);
  const TrafficMatrix tm = make_gravity_matrix(topo.num_nodes(), {});
  const auto classes =
      build_classes(topo, routing, tm, uniform_chain_assignment(4));
  // Every OD pair active: 12*11 classes with dense ids.
  ASSERT_EQ(classes.size(), 132u);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    EXPECT_EQ(classes[i].id, static_cast<ClassId>(i));
  }
}

TEST(UpdateRates, TracksNewSnapshot) {
  const net::Topology topo = net::make_line(3);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(3);
  tm.set(0, 2, 100.0);
  const auto assign = uniform_chain_assignment(2);
  auto classes = build_classes(topo, routing, tm, assign);
  ASSERT_EQ(classes.size(), 1u);
  TrafficMatrix tm2(3);
  tm2.set(0, 2, 40.0);
  update_rates(classes, tm2, assign);
  EXPECT_DOUBLE_EQ(classes[0].rate_mbps, 40.0);
  // Path and identity unchanged.
  EXPECT_EQ(classes[0].path, (net::Path{0, 1, 2}));
}

TEST(TotalRate, SumsClasses) {
  std::vector<TrafficClass> classes(3);
  classes[0].rate_mbps = 1.0;
  classes[1].rate_mbps = 2.5;
  classes[2].rate_mbps = 4.0;
  EXPECT_DOUBLE_EQ(total_rate(classes), 7.5);
}

// Property: aggregated traffic is smoother than its parts (Sec. IV-A).
TEST(Aggregation, ReducesCoefficientOfVariation) {
  const TrafficMatrix base = make_gravity_matrix(8, {});
  DiurnalConfig cfg;
  cfg.num_snapshots = 300;
  cfg.diurnal_amplitude = 0.0;  // isolate stochastic noise
  cfg.noise_sigma = 0.4;
  const auto series = make_diurnal_series(base, cfg);
  // Per-OD CoV vs network-aggregate CoV.
  std::vector<double> od01, aggregate;
  for (const auto& tm : series) {
    od01.push_back(tm.at(0, 1));
    aggregate.push_back(tm.total());
  }
  EXPECT_LT(coefficient_of_variation(aggregate),
            coefficient_of_variation(od01));
}

}  // namespace
}  // namespace apple::traffic
