#include <gtest/gtest.h>

#include "net/routing.h"
#include "net/topologies.h"
#include "traffic/flow_classes.h"
#include "traffic/synthesis.h"

namespace apple::traffic {
namespace {

TEST(PoliciedFraction, OneMeansEveryPairPolicied) {
  const auto assign = uniform_chain_assignment(4, 0, 1.0);
  for (net::NodeId s = 0; s < 10; ++s) {
    for (net::NodeId d = 0; d < 10; ++d) {
      EXPECT_EQ(assign(s, d).size(), 1u);
    }
  }
}

TEST(PoliciedFraction, ZeroMeansNothingPolicied) {
  const auto assign = uniform_chain_assignment(4, 0, 0.0);
  for (net::NodeId s = 0; s < 10; ++s) {
    for (net::NodeId d = 0; d < 10; ++d) {
      EXPECT_TRUE(assign(s, d).empty());
    }
  }
}

TEST(PoliciedFraction, FractionIsApproximatelyHonored) {
  const auto assign = uniform_chain_assignment(4, 0, 0.4);
  int policied = 0;
  const int kPairs = 4000;
  for (int i = 0; i < kPairs; ++i) {
    const net::NodeId s = static_cast<net::NodeId>(i * 2654435761u);
    const net::NodeId d = static_cast<net::NodeId>(i * 40503u + 17u);
    if (!assign(s, d).empty()) ++policied;
  }
  EXPECT_NEAR(static_cast<double>(policied) / kPairs, 0.4, 0.05);
}

TEST(PoliciedFraction, DeterministicPerPair) {
  const auto assign = uniform_chain_assignment(4, 9, 0.4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(assign(3, 8).size(), assign(3, 8).size());
    if (!assign(3, 8).empty()) {
      EXPECT_EQ(assign(3, 8)[0].first, assign(3, 8)[0].first);
    }
  }
}

TEST(PoliciedFraction, Validation) {
  EXPECT_THROW(uniform_chain_assignment(4, 0, -0.1), std::invalid_argument);
  EXPECT_THROW(uniform_chain_assignment(4, 0, 1.1), std::invalid_argument);
}

TEST(PoliciedFraction, ReducesClassCount) {
  const net::Topology topo = net::make_internet2();
  const net::AllPairsPaths routing(topo);
  const TrafficMatrix tm = make_gravity_matrix(topo.num_nodes(), {});
  const auto all =
      build_classes(topo, routing, tm, uniform_chain_assignment(4, 0, 1.0));
  const auto some =
      build_classes(topo, routing, tm, uniform_chain_assignment(4, 0, 0.4));
  EXPECT_EQ(all.size(), 132u);
  EXPECT_LT(some.size(), all.size());
  EXPECT_GT(some.size(), 0u);
}

}  // namespace
}  // namespace apple::traffic
