#include "traffic/matrix_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "traffic/synthesis.h"

namespace apple::traffic {
namespace {

TEST(MatrixIo, RoundTripsSingleMatrix) {
  const TrafficMatrix original = make_gravity_matrix(7, {.seed = 5});
  std::stringstream buffer;
  save_matrix_csv(original, buffer);
  const TrafficMatrix parsed = load_matrix_csv(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t s = 0; s < 7; ++s) {
    for (std::size_t d = 0; d < 7; ++d) {
      EXPECT_NEAR(parsed.at(s, d), original.at(s, d), 1e-9);
    }
  }
}

TEST(MatrixIo, RoundTripsSeries) {
  const TrafficMatrix base = make_gravity_matrix(4, {});
  DiurnalConfig cfg;
  cfg.num_snapshots = 5;
  const auto series = make_diurnal_series(base, cfg);
  std::stringstream buffer;
  save_series_csv(series, buffer);
  const auto parsed = load_series_csv(buffer);
  ASSERT_EQ(parsed.size(), series.size());
  for (std::size_t t = 0; t < series.size(); ++t) {
    EXPECT_NEAR(parsed[t].total(), series[t].total(), 1e-6);
  }
}

TEST(MatrixIo, EmptySeriesYieldsNothing) {
  std::istringstream empty("");
  EXPECT_TRUE(load_series_csv(empty).empty());
}

TEST(MatrixIo, RejectsMissingHeader) {
  std::istringstream bad("1,2\n3,4\n");
  EXPECT_THROW(load_matrix_csv(bad), std::runtime_error);
}

TEST(MatrixIo, RejectsTruncatedBody) {
  std::istringstream bad("# traffic-matrix n=3\n1,2,3\n4,5,6\n");
  EXPECT_THROW(load_matrix_csv(bad), std::runtime_error);
}

TEST(MatrixIo, RejectsShortRow) {
  std::istringstream bad("# traffic-matrix n=2\n1,2\n3\n");
  EXPECT_THROW(load_matrix_csv(bad), std::runtime_error);
}

TEST(MatrixIo, RejectsZeroSize) {
  std::istringstream bad("# traffic-matrix n=0\n");
  EXPECT_THROW(load_matrix_csv(bad), std::runtime_error);
}

}  // namespace
}  // namespace apple::traffic
