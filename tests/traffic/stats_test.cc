#include "traffic/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace apple::traffic {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(mean(one), 5.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Quantile, Validation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Boxplot, FiveNumberSummary) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxplotStats b = boxplot(xs);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].probability, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
  }
}

TEST(CoefficientOfVariation, ZeroMeanSafe) {
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(zeros), 0.0);
}

TEST(CoefficientOfVariation, ScaleInvariant) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  std::vector<double> scaled{10.0, 20.0, 30.0};
  EXPECT_NEAR(coefficient_of_variation(xs), coefficient_of_variation(scaled),
              1e-12);
}

}  // namespace
}  // namespace apple::traffic
