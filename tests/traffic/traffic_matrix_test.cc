#include "traffic/traffic_matrix.h"

#include <gtest/gtest.h>

namespace apple::traffic {
namespace {

TEST(TrafficMatrix, DefaultIsEmpty) {
  TrafficMatrix tm;
  EXPECT_EQ(tm.size(), 0u);
  EXPECT_DOUBLE_EQ(tm.total(), 0.0);
}

TEST(TrafficMatrix, SetGetAdd) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 10.0);
  tm.add(0, 1, 5.0);
  tm.set(2, 0, 7.0);
  EXPECT_DOUBLE_EQ(tm.at(0, 1), 15.0);
  EXPECT_DOUBLE_EQ(tm.at(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(tm.at(1, 2), 0.0);
}

TEST(TrafficMatrix, TotalSkipsDiagonal) {
  TrafficMatrix tm(2);
  tm.set(0, 0, 100.0);  // self traffic ignored
  tm.set(0, 1, 3.0);
  tm.set(1, 0, 4.0);
  EXPECT_DOUBLE_EQ(tm.total(), 7.0);
}

TEST(TrafficMatrix, ScaleAndMax) {
  TrafficMatrix tm(2);
  tm.set(0, 1, 3.0);
  tm.set(1, 0, 9.0);
  tm.scale(2.0);
  EXPECT_DOUBLE_EQ(tm.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(tm.max_entry(), 18.0);
}

TEST(TrafficMatrix, OutOfRangeThrows) {
  TrafficMatrix tm(2);
  EXPECT_THROW(tm.at(2, 0), std::out_of_range);
  EXPECT_THROW(tm.set(0, 2, 1.0), std::out_of_range);
}

TEST(MeanMatrix, AveragesSnapshots) {
  TrafficMatrix a(2), b(2);
  a.set(0, 1, 2.0);
  b.set(0, 1, 4.0);
  b.set(1, 0, 6.0);
  const std::vector<TrafficMatrix> snaps{a, b};
  const TrafficMatrix mean = mean_matrix(snaps);
  EXPECT_DOUBLE_EQ(mean.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(mean.at(1, 0), 3.0);
}

TEST(MeanMatrix, RejectsEmptyAndMismatched) {
  EXPECT_THROW(mean_matrix({}), std::invalid_argument);
  const std::vector<TrafficMatrix> bad{TrafficMatrix(2), TrafficMatrix(3)};
  EXPECT_THROW(mean_matrix(bad), std::invalid_argument);
}

}  // namespace
}  // namespace apple::traffic
