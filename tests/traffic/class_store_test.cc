#include "traffic/class_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/epoch_pipeline.h"
#include "exec/thread_pool.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "traffic/flow_classes.h"
#include "traffic/synthesis.h"

namespace apple::traffic {
namespace {

TrafficMatrix gravity_for(const net::Topology& topo, double total = 2000.0) {
  return make_gravity_matrix(topo.num_nodes(), {.total_mbps = total, .seed = 3});
}

class ClassStoreTest : public ::testing::Test {
 protected:
  net::Topology topo_ = net::make_internet2();
  net::AllPairsPaths routing_{topo_};
  TrafficMatrix tm_ = gravity_for(topo_);
  ChainAssignment assign_ = uniform_chain_assignment(4, /*seed=*/7, 1.0);
};

TEST_F(ClassStoreTest, MatchesFlatBuildClassSet) {
  const ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  const auto flat = build_classes(topo_, routing_, tm_, assign_, 1e-6);
  ASSERT_EQ(store.size(), flat.size());

  // Same class set (different canonical order: shard-major vs row-major).
  const auto view = store.materialize_view();
  auto key = [](const TrafficClass& c) {
    return std::tuple(c.src, c.dst, c.chain_id, c.rate_mbps, c.path);
  };
  std::vector<decltype(key(flat[0]))> a, b;
  for (const auto& c : view) a.push_back(key(c));
  for (const auto& c : flat) b.push_back(key(c));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(ClassStoreTest, IdsAreDenseAlongIterationOrder) {
  const ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  const auto view = store.materialize_view();
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i].id, static_cast<ClassId>(i));
  }
  // Offsets are the prefix sums of shard sizes.
  std::size_t running = 0;
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    EXPECT_EQ(store.shard_offset(s), running);
    running += store.shard(s).size();
  }
  EXPECT_EQ(running, store.size());
}

TEST_F(ClassStoreTest, EveryClassLandsInItsHashShard) {
  const ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    const ClassStore::Shard& sh = store.shard(s);
    for (std::size_t i = 0; i < sh.size(); ++i) {
      EXPECT_EQ(ClassStore::shard_of(sh.srcs[i], sh.dsts[i],
                                     store.num_shards()),
                s);
    }
  }
}

TEST_F(ClassStoreTest, WithinShardOrderIsScanOrder) {
  const ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    const ClassStore::Shard& sh = store.shard(s);
    for (std::size_t i = 1; i < sh.size(); ++i) {
      const auto prev = std::tuple(sh.srcs[i - 1], sh.dsts[i - 1],
                                   sh.chains[i - 1]);
      const auto cur = std::tuple(sh.srcs[i], sh.dsts[i], sh.chains[i]);
      EXPECT_LT(prev, cur);
    }
  }
}

TEST_F(ClassStoreTest, PathsInternOncePerOdPair) {
  const ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  std::set<std::pair<net::NodeId, net::NodeId>> pairs;
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    const ClassStore::Shard& sh = store.shard(s);
    for (std::size_t i = 0; i < sh.size(); ++i) {
      pairs.emplace(sh.srcs[i], sh.dsts[i]);
      // The interned span is the routed path.
      const auto nodes = store.paths().nodes(sh.paths[i]);
      const auto want = routing_.path(sh.srcs[i], sh.dsts[i]);
      ASSERT_TRUE(want.has_value());
      EXPECT_TRUE(std::equal(nodes.begin(), nodes.end(), want->begin(),
                             want->end()));
    }
  }
  EXPECT_EQ(store.paths().size(), pairs.size());
}

TEST_F(ClassStoreTest, ParallelBuildIsByteIdenticalAcrossWorkerCounts) {
  const ClassStore serial = build_class_store(topo_, routing_, tm_, assign_);
  const std::uint64_t want = serial.fingerprint();
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    StoreBuildOptions opt;
    opt.num_workers = workers;
    const ClassStore store =
        build_class_store(topo_, routing_, tm_, assign_, opt);
    EXPECT_EQ(store.fingerprint(), want) << workers << " workers";
    // Field-level identity, not just hash equality.
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
      EXPECT_EQ(store.shard(s).ids, serial.shard(s).ids);
      EXPECT_EQ(store.shard(s).srcs, serial.shard(s).srcs);
      EXPECT_EQ(store.shard(s).dsts, serial.shard(s).dsts);
      EXPECT_EQ(store.shard(s).chains, serial.shard(s).chains);
      EXPECT_EQ(store.shard(s).paths, serial.shard(s).paths);
      EXPECT_EQ(store.shard(s).rates, serial.shard(s).rates);
    }
  }
}

TEST_F(ClassStoreTest, ExternalPoolBuildMatchesSerial) {
  const ClassStore serial = build_class_store(topo_, routing_, tm_, assign_);
  exec::ThreadPool pool(3);
  StoreBuildOptions opt;
  opt.pool = &pool;
  const ClassStore pooled =
      build_class_store(topo_, routing_, tm_, assign_, opt);
  EXPECT_EQ(pooled.fingerprint(), serial.fingerprint());
  // materialize_view is also shard-parallel when given a pool.
  const auto serial_view = serial.materialize_view();
  const auto pooled_view = pooled.materialize_view(&pool);
  ASSERT_EQ(serial_view.size(), pooled_view.size());
  for (std::size_t i = 0; i < serial_view.size(); ++i) {
    EXPECT_EQ(serial_view[i].id, pooled_view[i].id);
    EXPECT_EQ(serial_view[i].path, pooled_view[i].path);
  }
}

TEST_F(ClassStoreTest, PoliciedFractionZeroYieldsEmptyStore) {
  const ChainAssignment none = uniform_chain_assignment(4, 7, 0.0);
  const ClassStore store = build_class_store(topo_, routing_, tm_, none);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.paths().size(), 0u);
  EXPECT_EQ(store.total_rate(), 0.0);
}

TEST_F(ClassStoreTest, PoliciedFractionOneCoversEveryDemandedPair) {
  const ChainAssignment all = uniform_chain_assignment(4, 7, 1.0);
  const ClassStore store = build_class_store(topo_, routing_, tm_, all);
  std::size_t demanded = 0;
  for (net::NodeId s = 0; s < topo_.num_nodes(); ++s) {
    for (net::NodeId d = 0; d < topo_.num_nodes(); ++d) {
      if (s != d && tm_.at(s, d) >= 1e-6) ++demanded;
    }
  }
  EXPECT_EQ(store.size(), demanded);  // one chain per pair
}

TEST_F(ClassStoreTest, MinRateBoundaryIsInclusive) {
  net::Topology topo = net::make_line(2);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(2);
  tm.set(0, 1, 5.0);
  tm.set(1, 0, 4.999);
  const ChainAssignment one = uniform_chain_assignment(1, 0, 1.0);
  StoreBuildOptions opt;
  opt.min_rate_mbps = 5.0;
  const ClassStore store = build_class_store(topo, routing, tm, one, opt);
  // Exactly-at-threshold survives; below does not.
  ASSERT_EQ(store.size(), 1u);
  const auto view = store.materialize_view();
  EXPECT_EQ(view[0].src, 0u);
  EXPECT_EQ(view[0].dst, 1u);
  EXPECT_DOUBLE_EQ(view[0].rate_mbps, 5.0);
}

TEST_F(ClassStoreTest, UnreachableOdPairsAreSkipped) {
  // Two disconnected line segments: (0,1) and (2,3) have paths, every
  // cross pair is unreachable.
  net::Topology topo("split");
  for (int i = 0; i < 4; ++i) topo.add_node("s" + std::to_string(i), 8.0);
  topo.add_link(0, 1);
  topo.add_link(2, 3);
  const net::AllPairsPaths routing(topo);
  TrafficMatrix tm(4);
  for (net::NodeId s = 0; s < 4; ++s) {
    for (net::NodeId d = 0; d < 4; ++d) {
      if (s != d) tm.set(s, d, 10.0);
    }
  }
  const ChainAssignment one = uniform_chain_assignment(1, 0, 1.0);
  const ClassStore store = build_class_store(topo, routing, tm, one);
  EXPECT_EQ(store.size(), 4u);  // 0<->1 and 2<->3 only
  const auto view = store.materialize_view();
  for (const TrafficClass& cls : view) {
    EXPECT_EQ(cls.src / 2, cls.dst / 2) << "crossed the partition";
  }
}

TEST_F(ClassStoreTest, UpdateRatesMatchesRebuildOnNewMatrix) {
  ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  TrafficMatrix moved = tm_;
  for (net::NodeId s = 0; s < topo_.num_nodes(); ++s) {
    for (net::NodeId d = 0; d < topo_.num_nodes(); ++d) {
      if (s != d) moved.set(s, d, tm_.at(s, d) * 1.25);
    }
  }
  update_rates(store, moved, assign_);
  const ClassStore rebuilt =
      build_class_store(topo_, routing_, moved, assign_);
  // Same classes, same rates (ids/chains/paths preserved by update_rates).
  ASSERT_EQ(store.size(), rebuilt.size());
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    EXPECT_EQ(store.shard(s).rates, rebuilt.shard(s).rates);
    EXPECT_EQ(store.shard_fingerprint(s), rebuilt.shard_fingerprint(s));
  }
  // Pooled re-rating is identical.
  ClassStore pooled = build_class_store(topo_, routing_, tm_, assign_);
  exec::ThreadPool pool(3);
  update_rates(pooled, moved, assign_, &pool);
  EXPECT_EQ(pooled.fingerprint(), store.fingerprint());
}

TEST(RateAgingOptionsTest, ValidateRejectsBadFields) {
  RateAgingOptions opt;
  opt.decay = -0.1;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt.decay = 1.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt.decay = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = RateAgingOptions{};
  opt.min_class_rate_mbps = -1.0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt.min_class_rate_mbps = std::numeric_limits<double>::infinity();
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  EXPECT_NO_THROW(RateAgingOptions{}.validate());
}

TEST_F(ClassStoreTest, AgingEwmaBlendsOldAndFreshRates) {
  ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  ASSERT_GT(store.size(), 0u);
  std::vector<double> before;
  for (const TrafficClass& cls : store.materialize_view()) {
    before.push_back(cls.rate_mbps);
  }
  // Against an all-zero snapshot the EWMA with decay 0.5 halves every rate
  // (fresh contribution is zero), and nothing is evicted without a floor.
  const TrafficMatrix zero(topo_.num_nodes());
  const std::size_t evicted =
      update_rates(store, zero, assign_, RateAgingOptions{.decay = 0.5});
  EXPECT_EQ(evicted, 0u);
  const auto view = store.materialize_view();
  ASSERT_EQ(view.size(), before.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_DOUBLE_EQ(view[i].rate_mbps, before[i] * 0.5);
  }
}

TEST_F(ClassStoreTest, AgingEvictsClassesBelowFloorLikeAFreshBuild) {
  ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  const std::size_t size_before = store.size();
  // Pick a floor between the extremes so the eviction is non-trivial but
  // not total.
  std::vector<double> rates;
  for (const TrafficClass& cls : store.materialize_view()) {
    rates.push_back(cls.rate_mbps);
  }
  std::sort(rates.begin(), rates.end());
  const double floor = rates[rates.size() / 2];

  RateAgingOptions aging;
  aging.decay = 0.0;  // pure re-rate: aged == fresh demand
  aging.min_class_rate_mbps = floor;
  const std::size_t evicted = update_rates(store, tm_, assign_, aging);
  EXPECT_GT(evicted, 0u);
  EXPECT_EQ(store.size(), size_before - evicted);

  // With decay 0 the survivors are exactly what a fresh build with the same
  // rate floor produces; shard fingerprints exclude ids, so they match even
  // though the aged store keeps the survivors' original (gappy) ids.
  StoreBuildOptions opt;
  opt.min_rate_mbps = floor;
  const ClassStore rebuilt =
      build_class_store(topo_, routing_, tm_, assign_, opt);
  ASSERT_EQ(store.size(), rebuilt.size());
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    EXPECT_EQ(store.shard_fingerprint(s), rebuilt.shard_fingerprint(s));
  }
}

TEST_F(ClassStoreTest, AgedOutClassesSurfaceAsRemovedInTheNextDiff) {
  const ClassStore previous = build_class_store(topo_, routing_, tm_, assign_);
  ClassStore aged = build_class_store(topo_, routing_, tm_, assign_);
  std::vector<double> rates;
  for (const TrafficClass& cls : aged.materialize_view()) {
    rates.push_back(cls.rate_mbps);
  }
  std::sort(rates.begin(), rates.end());
  RateAgingOptions aging;
  aging.min_class_rate_mbps = rates[rates.size() / 2];
  const std::size_t evicted = update_rates(aged, tm_, assign_, aging);
  ASSERT_GT(evicted, 0u);

  const core::ClassDelta delta = core::diff_classes(previous, aged);
  EXPECT_EQ(delta.removed.size(), evicted);
  EXPECT_TRUE(delta.added.empty());
}

TEST_F(ClassStoreTest, AgingIsWorkerCountInvariant) {
  RateAgingOptions aging;
  aging.decay = 0.25;
  aging.min_class_rate_mbps = 8.0;
  ClassStore serial = build_class_store(topo_, routing_, tm_, assign_);
  const std::size_t evicted_serial = update_rates(serial, tm_, assign_, aging);

  exec::ThreadPool pool(3);
  ClassStore pooled = build_class_store(topo_, routing_, tm_, assign_);
  const std::size_t evicted_pooled =
      update_rates(pooled, tm_, assign_, aging, &pool);
  EXPECT_EQ(evicted_serial, evicted_pooled);
  EXPECT_EQ(serial.fingerprint(), pooled.fingerprint());
}

TEST_F(ClassStoreTest, SetIdRewritesOneClass) {
  ClassStore store = build_class_store(topo_, routing_, tm_, assign_);
  ASSERT_GT(store.size(), 0u);
  std::size_t shard = 0;
  while (store.shard(shard).size() == 0) ++shard;
  const std::uint64_t before = store.shard_fingerprint(shard);
  store.set_id(shard, 0, 424242);
  EXPECT_EQ(store.shard(shard).ids[0], 424242u);
  // Ids are excluded from shard fingerprints (the diff's clean-shard probe
  // must survive epoch id carry-over).
  EXPECT_EQ(store.shard_fingerprint(shard), before);
}

TEST_F(ClassStoreTest, ShardCountIsConfigurable) {
  StoreBuildOptions opt;
  opt.num_shards = 7;
  const ClassStore store =
      build_class_store(topo_, routing_, tm_, assign_, opt);
  EXPECT_EQ(store.num_shards(), 7u);
  EXPECT_THROW(
      {
        StoreBuildOptions bad;
        bad.num_shards = 0;
        build_class_store(topo_, routing_, tm_, assign_, bad);
      },
      std::invalid_argument);
}

// 100k-class parallel build on the AS-3679 scale scenario: the shard
// assembly races are exactly what tsan runs this suite for.
TEST(ClassStoreScaleTest, HundredThousandClassParallelBuildIsDeterministic) {
  const net::Topology topo = net::make_as3679();
  const net::AllPairsPaths routing(topo);
  const TrafficMatrix tm = make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = 20000.0, .seed = 1});
  const ChainAssignment assign =
      scaled_chain_assignment(32, /*chains_per_pair=*/18, /*seed=*/0, 1.0);
  StoreBuildOptions opt;
  opt.num_shards = 64;
  const ClassStore serial = build_class_store(topo, routing, tm, assign, opt);
  EXPECT_GE(serial.size(), 100000u);
  StoreBuildOptions par = opt;
  par.num_workers = 8;
  const ClassStore parallel =
      build_class_store(topo, routing, tm, assign, par);
  EXPECT_EQ(parallel.fingerprint(), serial.fingerprint());
}

}  // namespace
}  // namespace apple::traffic
