// Worker-count parity and determinism of the parallel branch-and-bound
// engine: any num_workers must produce the same status and objective as the
// serial path, and in deterministic mode the identical incumbent and node
// count on repeated runs with a fixed worker count.
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "lp/mip.h"

namespace apple::lp {
namespace {

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

MipResult solve_with(const LpModel& m, std::size_t workers,
                     bool deterministic = true) {
  MipOptions opt;
  opt.num_workers = workers;
  opt.deterministic = deterministic;
  return MipSolver(opt).solve(m);
}

// Random weighted set cover (always feasible: every element is coverable).
LpModel random_set_cover(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cost(1.0, 5.0);
  std::bernoulli_distribution member(0.45);
  const int num_sets = 10, num_elems = 8;
  LpModel m;
  std::vector<VarId> use;
  for (int s = 0; s < num_sets; ++s) {
    const VarId v = m.add_var(cost(rng), true);
    use.push_back(v);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
  }
  for (int e = 0; e < num_elems; ++e) {
    std::vector<std::pair<VarId, double>> row;
    for (int s = 0; s < num_sets; ++s) {
      if (member(rng)) row.emplace_back(use[s], 1.0);
    }
    if (row.empty()) row.emplace_back(use[0], 1.0);
    m.add_row(Sense::kGreaterEqual, 1.0, row);
  }
  return m;
}

// Infeasible by construction: binaries must sum both >= k+1 and <= k.
LpModel random_infeasible(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> size(3, 7);
  const int n = size(rng);
  const int k = n / 2;
  LpModel m;
  std::vector<std::pair<VarId, double>> sum;
  for (int i = 0; i < n; ++i) {
    const VarId v = m.add_var(1.0, true);
    sum.emplace_back(v, 1.0);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
  }
  m.add_row(Sense::kGreaterEqual, static_cast<double>(k + 1), sum);
  m.add_row(Sense::kLessEqual, static_cast<double>(k), sum);
  return m;
}

// Unbounded: an integer variable with negative cost and no upper bound,
// plus unrelated noise constraints.
LpModel random_unbounded(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cost(0.5, 2.0);
  LpModel m;
  const VarId free_var = m.add_var(-cost(rng), true);
  const VarId other = m.add_var(cost(rng), true);
  m.add_row(Sense::kLessEqual, 3.0, {{other, 1.0}});
  m.add_row(Sense::kGreaterEqual, 1.0, {{free_var, 1.0}, {other, 1.0}});
  return m;
}

class MipParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(MipParallelSweep, FeasibleParityAcrossWorkerCounts) {
  const LpModel m = random_set_cover(static_cast<std::uint64_t>(GetParam()));
  const MipResult serial = solve_with(m, 1);
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);
  EXPECT_TRUE(serial.proven_optimal);
  for (const std::size_t w : kWorkerCounts) {
    const MipResult r = solve_with(m, w);
    ASSERT_EQ(r.status, serial.status) << "workers=" << w;
    EXPECT_NEAR(r.objective, serial.objective, 1e-5) << "workers=" << w;
    EXPECT_TRUE(r.proven_optimal) << "workers=" << w;
    EXPECT_LE(m.max_violation(r.x), 1e-6) << "workers=" << w;
  }
}

TEST_P(MipParallelSweep, InfeasibleParityAcrossWorkerCounts) {
  const LpModel m = random_infeasible(static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t w : kWorkerCounts) {
    const MipResult r = solve_with(m, w);
    EXPECT_EQ(r.status, SolveStatus::kInfeasible) << "workers=" << w;
    EXPECT_FALSE(r.has_solution()) << "workers=" << w;
  }
}

TEST_P(MipParallelSweep, UnboundedParityAcrossWorkerCounts) {
  const LpModel m = random_unbounded(static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t w : kWorkerCounts) {
    const MipResult r = solve_with(m, w);
    EXPECT_EQ(r.status, SolveStatus::kUnbounded) << "workers=" << w;
  }
}

TEST_P(MipParallelSweep, DeterministicModeRepeatsBitwise) {
  const LpModel m = random_set_cover(static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t w : kWorkerCounts) {
    const MipResult a = solve_with(m, w);
    const MipResult b = solve_with(m, w);
    ASSERT_EQ(a.status, b.status) << "workers=" << w;
    EXPECT_EQ(a.objective, b.objective) << "workers=" << w;  // bitwise
    EXPECT_EQ(a.nodes_explored, b.nodes_explored) << "workers=" << w;
    EXPECT_EQ(a.x, b.x) << "workers=" << w;  // identical incumbent
  }
}

TEST_P(MipParallelSweep, NonDeterministicModeKeepsObjectiveParity) {
  const LpModel m = random_set_cover(static_cast<std::uint64_t>(GetParam()));
  const MipResult serial = solve_with(m, 1);
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);
  for (const std::size_t w : kWorkerCounts) {
    const MipResult r = solve_with(m, w, /*deterministic=*/false);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << "workers=" << w;
    // Tree shape may be timing-dependent, the optimum is not.
    EXPECT_NEAR(r.objective, serial.objective, 1e-5) << "workers=" << w;
    EXPECT_LE(m.max_violation(r.x), 1e-6) << "workers=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipParallelSweep, ::testing::Range(1, 11));

// Mixed-integer problem where branching interacts with continuous
// variables; checks the warm-started bound overlay keeps the relaxation
// chain consistent at every worker count.
TEST(MipParallel, MixedIntegerParity) {
  LpModel m;
  const VarId xi = m.add_var(-3.0, true);
  const VarId yc = m.add_var(-2.0, false);
  m.add_row(Sense::kLessEqual, 7.3, {{xi, 2.0}, {yc, 1.0}});
  m.add_row(Sense::kLessEqual, 4.1, {{xi, 1.0}, {yc, 1.0}});
  const MipResult serial = solve_with(m, 1);
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);
  for (const std::size_t w : kWorkerCounts) {
    const MipResult r = solve_with(m, w);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, serial.objective, 1e-6);
    const double frac = r.x[xi] - std::floor(r.x[xi]);
    EXPECT_LT(std::min(frac, 1.0 - frac), 1e-6);
  }
}

// A search deep enough (hundreds of nodes) that every worker count
// actually runs multi-node rounds, not just the root.
TEST(MipParallel, DeepSearchParityAndDeterminism) {
  LpModel m;
  std::vector<std::pair<VarId, double>> row;
  for (int i = 0; i < 9; ++i) {
    const VarId v = m.add_var(-1.0, true);
    row.emplace_back(v, 2.0);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
  }
  m.add_row(Sense::kLessEqual, 9.0, row);
  const MipResult serial = solve_with(m, 1);
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);
  EXPECT_NEAR(serial.objective, -4.0, 1e-6);
  ASSERT_GT(serial.nodes_explored, 100u);  // genuinely deep
  for (const std::size_t w : kWorkerCounts) {
    const MipResult a = solve_with(m, w);
    const MipResult b = solve_with(m, w);
    ASSERT_EQ(a.status, SolveStatus::kOptimal) << "workers=" << w;
    EXPECT_NEAR(a.objective, serial.objective, 1e-6) << "workers=" << w;
    EXPECT_TRUE(a.proven_optimal) << "workers=" << w;
    EXPECT_EQ(a.nodes_explored, b.nodes_explored) << "workers=" << w;
    EXPECT_EQ(a.x, b.x) << "workers=" << w;
  }
}

// The node limit must be honored identically regardless of worker count:
// a round never solves more nodes than the remaining budget. The symmetric
// knapsack (9 binaries, pairwise-identical, capacity 4.5) needs hundreds
// of nodes to close, so 3 can never prove optimality.
TEST(MipParallel, NodeLimitRespectedPerRound) {
  LpModel m;
  std::vector<std::pair<VarId, double>> row;
  for (int i = 0; i < 9; ++i) {
    const VarId v = m.add_var(-1.0, true);
    row.emplace_back(v, 2.0);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
  }
  m.add_row(Sense::kLessEqual, 9.0, row);
  for (const std::size_t w : kWorkerCounts) {
    MipOptions opt;
    opt.num_workers = w;
    opt.max_nodes = 3;
    const MipResult r = MipSolver(opt).solve(m);
    EXPECT_LE(r.nodes_explored, 3u) << "workers=" << w;
    EXPECT_FALSE(r.proven_optimal) << "workers=" << w;
  }
}

}  // namespace
}  // namespace apple::lp
