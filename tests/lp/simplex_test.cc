#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <random>

namespace apple::lp {
namespace {

// Textbook LP:
//   max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (x,y >= 0)
// optimum x=2, y=6, objective 36. We minimize, so negate.
TEST(Simplex, TextbookMaximization) {
  LpModel m;
  const VarId x = m.add_var(-3.0);
  const VarId y = m.add_var(-5.0);
  m.add_row(Sense::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Sense::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Sense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + y = 10, x - y = 2  ->  x=6, y=4.
  LpModel m;
  const VarId x = m.add_var(1.0);
  const VarId y = m.add_var(1.0);
  m.add_row(Sense::kEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kEqual, 2.0, {{x, 1.0}, {y, -1.0}});
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[x], 6.0, 1e-9);
  EXPECT_NEAR(s.x[y], 4.0, 1e-9);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
}

TEST(Simplex, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  x=4, y=0, obj 8.
  LpModel m;
  const VarId x = m.add_var(2.0);
  const VarId y = m.add_var(3.0);
  m.add_row(Sense::kGreaterEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kGreaterEqual, 1.0, {{x, 1.0}});
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
  EXPECT_NEAR(s.x[x], 4.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LpModel m;
  const VarId x = m.add_var(1.0);
  m.add_row(Sense::kLessEqual, 1.0, {{x, 1.0}});
  m.add_row(Sense::kGreaterEqual, 2.0, {{x, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpModel m;
  const VarId x = m.add_var(-1.0);  // maximize x with no upper limit
  m.add_row(Sense::kGreaterEqual, 0.0, {{x, 1.0}});
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LpModel m;
  const VarId x = m.add_var(1.0);
  m.add_row(Sense::kLessEqual, -3.0, {{x, -1.0}});
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate corner: several constraints meet at the optimum.
  LpModel m;
  const VarId x = m.add_var(-1.0);
  const VarId y = m.add_var(-1.0);
  m.add_row(Sense::kLessEqual, 0.0, {{x, 1.0}, {y, -1.0}});
  m.add_row(Sense::kLessEqual, 0.0, {{x, -1.0}, {y, 1.0}});
  m.add_row(Sense::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -4.0, 1e-9);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  // Duplicate equality: phase 1 must cope with a redundant row.
  LpModel m;
  const VarId x = m.add_var(1.0);
  const VarId y = m.add_var(2.0);
  m.add_row(Sense::kEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-9);  // x=4, y=0
}

TEST(Simplex, ZeroObjectiveFeasibilityProblem) {
  LpModel m;
  const VarId x = m.add_var(0.0);
  m.add_row(Sense::kEqual, 7.0, {{x, 1.0}});
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[x], 7.0, 1e-9);
}

TEST(Simplex, EmptyModelIsTriviallyOptimal) {
  LpModel m;
  m.add_var(1.0);
  const LpSolution s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

// Property sweep: random feasible transportation-style LPs; the solution
// must satisfy every constraint and match a brute-force greedy lower bound
// check (solution feasible => objective >= LP optimum is automatic; here we
// verify feasibility and optimality via complementary checks).
class SimplexRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomSweep, RandomTransportationProblemsAreSolvedFeasibly) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> cost(1.0, 10.0);
  std::uniform_real_distribution<double> amount(1.0, 5.0);
  const int sources = 3, sinks = 4;
  LpModel m;
  std::vector<std::vector<VarId>> ship(sources, std::vector<VarId>(sinks));
  for (int s = 0; s < sources; ++s) {
    for (int d = 0; d < sinks; ++d) ship[s][d] = m.add_var(cost(rng));
  }
  std::vector<double> supply(sources);
  double total = 0.0;
  for (int s = 0; s < sources; ++s) {
    supply[s] = amount(rng);
    total += supply[s];
  }
  // Sinks must jointly absorb all supply; per-sink demand = total/sinks.
  for (int s = 0; s < sources; ++s) {
    std::vector<std::pair<VarId, double>> terms;
    for (int d = 0; d < sinks; ++d) terms.emplace_back(ship[s][d], 1.0);
    m.add_row(Sense::kEqual, supply[s], terms);
  }
  for (int d = 0; d < sinks; ++d) {
    std::vector<std::pair<VarId, double>> terms;
    for (int s = 0; s < sources; ++s) terms.emplace_back(ship[s][d], 1.0);
    m.add_row(Sense::kEqual, total / sinks, terms);
  }
  const LpSolution sol = SimplexSolver().solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_LE(m.max_violation(sol.x), 1e-7);
  // Objective is bounded below by (min cost) * total shipped.
  double min_cost = 1e9;
  for (int s = 0; s < sources; ++s) {
    for (int d = 0; d < sinks; ++d) {
      min_cost = std::min(min_cost, m.var(ship[s][d]).objective);
    }
  }
  EXPECT_GE(sol.objective, min_cost * total - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomSweep,
                         ::testing::Range(1, 13));

// The textbook LP of TextbookMaximization, reused by the SolveContext
// tests below: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
LpModel textbook(VarId& x, VarId& y) {
  LpModel m;
  x = m.add_var(-3.0);
  y = m.add_var(-5.0);
  m.add_row(Sense::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Sense::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Sense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  return m;
}

TEST(SimplexBounds, UpperBoundOverlayChangesOptimum) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  SolveContext ctx;
  const std::vector<double> lower{0.0, 0.0};
  const std::vector<double> upper{kInf, 3.0};  // y <= 3
  ctx.lower = lower;
  ctx.upper = upper;
  const LpSolution sol = SimplexSolver().solve(m, ctx);
  ASSERT_TRUE(sol.optimal());
  // With y capped at 3: x = 4, y = 3, objective -(12 + 15) = -27.
  EXPECT_NEAR(sol.x[x], 4.0, 1e-6);
  EXPECT_NEAR(sol.x[y], 3.0, 1e-6);
  EXPECT_NEAR(sol.objective, -27.0, 1e-6);
}

TEST(SimplexBounds, FixedVariableIsSubstitutedAway) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  SolveContext ctx;
  const std::vector<double> lower{2.0, 0.0};
  const std::vector<double> upper{2.0, 6.0};  // x fixed at 2
  ctx.lower = lower;
  ctx.upper = upper;
  const LpSolution sol = SimplexSolver().solve(m, ctx);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 6.0, 1e-6);
  EXPECT_NEAR(sol.objective, -36.0, 1e-6);
}

TEST(SimplexBounds, LowerBoundShiftKeepsConstraintsConsistent) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  SolveContext ctx;
  const std::vector<double> lower{3.0, 0.0};  // x >= 3
  const std::vector<double> upper{kInf, kInf};
  ctx.lower = lower;
  ctx.upper = upper;
  const LpSolution sol = SimplexSolver().solve(m, ctx);
  ASSERT_TRUE(sol.optimal());
  EXPECT_GE(sol.x[x], 3.0 - 1e-9);
  EXPECT_LE(m.max_violation(sol.x), 1e-7);
  // x = 3 leaves 2y <= 9: y = 4.5, objective -(9 + 22.5) = -31.5.
  EXPECT_NEAR(sol.objective, -31.5, 1e-6);
}

TEST(SimplexBounds, CrossedBoundsAreInfeasible) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  SolveContext ctx;
  const std::vector<double> lower{3.0, 0.0};
  const std::vector<double> upper{2.0, 6.0};  // 3 > 2: empty box
  ctx.lower = lower;
  ctx.upper = upper;
  const LpSolution sol = SimplexSolver().solve(m, ctx);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(SimplexBounds, WarmBasisReproducesColdOptimum) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  SolveContext first;
  first.want_basis = true;
  const LpSolution cold = SimplexSolver().solve(m, first);
  ASSERT_TRUE(cold.optimal());
  ASSERT_FALSE(cold.basic_vars.empty());
  SolveContext warm;
  warm.warm_basis = &cold.basic_vars;
  const LpSolution hot = SimplexSolver().solve(m, warm);
  ASSERT_TRUE(hot.optimal());
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);
}

TEST(SimplexBounds, BasisOnlyReportedWhenRequested) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  const LpSolution plain = SimplexSolver().solve(m);
  EXPECT_TRUE(plain.basic_vars.empty());
  SolveContext ctx;
  ctx.want_basis = true;
  const LpSolution with = SimplexSolver().solve(m, ctx);
  ASSERT_TRUE(with.optimal());
  EXPECT_FALSE(with.basic_vars.empty());
}

TEST(SimplexDeadline, ExpiredDeadlineStopsTheSolve) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  SimplexOptions opt;
  opt.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  opt.deadline_poll_pivots = 1;
  const LpSolution sol = SimplexSolver(opt).solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kIterationLimit);
  EXPECT_EQ(sol.iterations, 0u);
}

TEST(SimplexDeadline, FutureDeadlineDoesNotInterfere) {
  VarId x, y;
  const LpModel m = textbook(x, y);
  SimplexOptions opt;
  opt.deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
  const LpSolution sol = SimplexSolver(opt).solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -36.0, 1e-6);
}

}  // namespace
}  // namespace apple::lp
