#include "lp/mip.h"

#include <gtest/gtest.h>

#include <random>

namespace apple::lp {
namespace {

// Knapsack as a 0/1 MIP: max value, weight <= 10.
//   items (value, weight): (10,5) (6,4) (4,3) (8,6)
// Optimum: items 0+2 (value 14, weight 8)? 0+1 = 16 weight 9 -> best 16.
TEST(Mip, SmallKnapsack) {
  LpModel m;
  const double values[] = {10, 6, 4, 8};
  const double weights[] = {5, 4, 3, 6};
  std::vector<VarId> pick;
  std::vector<std::pair<VarId, double>> wrow;
  for (int i = 0; i < 4; ++i) {
    const VarId v = m.add_var(-values[i], true);
    pick.push_back(v);
    wrow.emplace_back(v, weights[i]);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});  // binary upper bound
  }
  m.add_row(Sense::kLessEqual, 10.0, wrow);
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-6);
  EXPECT_NEAR(r.x[pick[0]], 1.0, 1e-6);
  EXPECT_NEAR(r.x[pick[1]], 1.0, 1e-6);
}

// Set cover: universe {1..5}, sets A={1,2,3} B={2,4} C={3,4,5} D={1,5}.
// Optimal cover: {A, C} = 2 sets.
TEST(Mip, SetCover) {
  LpModel m;
  const std::vector<std::vector<int>> sets{{1, 2, 3}, {2, 4}, {3, 4, 5},
                                           {1, 5}};
  std::vector<VarId> use;
  for (std::size_t s = 0; s < sets.size(); ++s) {
    const VarId v = m.add_var(1.0, true);
    use.push_back(v);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
  }
  for (int e = 1; e <= 5; ++e) {
    std::vector<std::pair<VarId, double>> row;
    for (std::size_t s = 0; s < sets.size(); ++s) {
      for (int member : sets[s]) {
        if (member == e) row.emplace_back(use[s], 1.0);
      }
    }
    m.add_row(Sense::kGreaterEqual, 1.0, row);
  }
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(Mip, IntegerRounding) {
  // min x s.t. x >= 2.5, x integer  -> x = 3.
  LpModel m;
  const VarId x = m.add_var(1.0, true);
  m.add_row(Sense::kGreaterEqual, 2.5, {{x, 1.0}});
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-9);
}

TEST(Mip, MixedIntegerContinuous) {
  // min 3q - y  s.t. 1 <= y <= 4.3, y <= 2q, q integer.
  // On the binding face y = 2q the objective is q, so the smallest feasible
  // q wins: y >= 1 forces q >= 0.5, hence q = 1, y = 2, objective 1.
  LpModel m;
  const VarId q = m.add_var(3.0, true);
  const VarId y = m.add_var(-1.0);
  m.add_row(Sense::kLessEqual, 4.3, {{y, 1.0}});
  m.add_row(Sense::kGreaterEqual, 1.0, {{y, 1.0}});
  m.add_row(Sense::kLessEqual, 0.0, {{y, 1.0}, {q, -2.0}});
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-6);
  EXPECT_NEAR(r.x[q], 1.0, 1e-6);
  EXPECT_NEAR(r.x[y], 2.0, 1e-6);
}

TEST(Mip, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x integer: no integer point.
  LpModel m;
  const VarId x = m.add_var(1.0, true);
  m.add_row(Sense::kGreaterEqual, 0.4, {{x, 1.0}});
  m.add_row(Sense::kLessEqual, 0.6, {{x, 1.0}});
  const MipResult r = MipSolver().solve(m);
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
  EXPECT_FALSE(r.has_solution());
}

TEST(Mip, PureLpPassesThrough) {
  LpModel m;
  const VarId x = m.add_var(1.0);
  m.add_row(Sense::kGreaterEqual, 2.5, {{x, 1.0}});
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.5, 1e-9);  // no rounding for continuous vars
}

TEST(Mip, NodeLimitReportsLimit) {
  // A knapsack-like instance with a tight node budget; with max_nodes=1 only
  // the root relaxation (fractional) is explored, so no incumbent exists.
  LpModel m;
  std::vector<std::pair<VarId, double>> wrow;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(1.0, 10.0);
  for (int i = 0; i < 12; ++i) {
    const VarId v = m.add_var(-u(rng), true);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
    wrow.emplace_back(v, u(rng));
  }
  m.add_row(Sense::kLessEqual, 15.0, wrow);
  MipOptions opt;
  opt.max_nodes = 1;
  const MipResult r = MipSolver(opt).solve(m);
  EXPECT_FALSE(r.proven_optimal);
}

// Property sweep: random small covering MIPs — the MIP optimum must be
// feasible, integral, and at least the LP relaxation bound.
class MipRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(MipRandomSweep, OptimumDominatesLpBoundAndIsIntegral) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> cost(1.0, 5.0);
  std::bernoulli_distribution member(0.45);
  const int num_sets = 8, num_elems = 6;
  LpModel m;
  std::vector<VarId> use;
  for (int s = 0; s < num_sets; ++s) {
    const VarId v = m.add_var(cost(rng), true);
    use.push_back(v);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
  }
  for (int e = 0; e < num_elems; ++e) {
    std::vector<std::pair<VarId, double>> row;
    for (int s = 0; s < num_sets; ++s) {
      if (member(rng)) row.emplace_back(use[s], 1.0);
    }
    // Ensure coverability.
    if (row.empty()) row.emplace_back(use[0], 1.0);
    m.add_row(Sense::kGreaterEqual, 1.0, row);
  }
  const LpSolution relax = SimplexSolver().solve(m);
  ASSERT_TRUE(relax.optimal());
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(r.x), 1e-6);
  for (VarId v : use) {
    const double frac = r.x[v] - std::floor(r.x[v]);
    EXPECT_LT(std::min(frac, 1.0 - frac), 1e-6);
  }
  EXPECT_GE(r.objective, relax.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipRandomSweep, ::testing::Range(1, 11));

// Knapsack model shared by the warm-start tests (optimum -16 at items 0+1).
LpModel warm_knapsack(std::vector<VarId>& pick) {
  LpModel m;
  const double values[] = {10, 6, 4, 8};
  const double weights[] = {5, 4, 3, 6};
  std::vector<std::pair<VarId, double>> wrow;
  for (int i = 0; i < 4; ++i) {
    const VarId v = m.add_var(-values[i], true);
    pick.push_back(v);
    wrow.emplace_back(v, weights[i]);
    m.add_row(Sense::kLessEqual, 1.0, {{v, 1.0}});
  }
  m.add_row(Sense::kLessEqual, 10.0, wrow);
  return m;
}

TEST(Mip, WarmIncumbentSeedsSearchWithoutChangingResult) {
  std::vector<VarId> pick;
  const LpModel m = warm_knapsack(pick);
  // A valid (sub-optimal) solution: items 2+3, value 12, weight 9.
  MipOptions options;
  options.warm_solution = {0.0, 0.0, 1.0, 1.0};
  const MipResult warm = MipSolver(options).solve(m);
  const MipResult cold = MipSolver().solve(m);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.proven_optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_NEAR(warm.objective, -16.0, 1e-6);
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < warm.x.size(); ++i) {
    EXPECT_NEAR(warm.x[i], cold.x[i], 1e-6);  // unique optimum either way
  }
}

TEST(Mip, OptimalWarmIncumbentIsReturnedVerbatim) {
  std::vector<VarId> pick;
  const LpModel m = warm_knapsack(pick);
  MipOptions options;
  options.warm_solution = {1.0, 1.0, 0.0, 0.0};  // the optimum itself
  const MipResult r = MipSolver(options).solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-6);
  EXPECT_NEAR(r.x[pick[0]], 1.0, 1e-6);
  EXPECT_NEAR(r.x[pick[1]], 1.0, 1e-6);
}

TEST(Mip, InvalidWarmIncumbentsAreIgnored) {
  std::vector<VarId> pick;
  const LpModel m = warm_knapsack(pick);
  // Wrong size, infeasible (weight 18 > 10), and fractional warm starts
  // must all degrade to a cold start, never poison the search.
  for (const std::vector<double>& bad :
       {std::vector<double>{1.0},
        std::vector<double>{1.0, 1.0, 1.0, 1.0},
        std::vector<double>{0.5, 0.5, 0.0, 0.0}}) {
    MipOptions options;
    options.warm_solution = bad;
    const MipResult r = MipSolver(options).solve(m);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, -16.0, 1e-6) << bad.size();
  }
}

}  // namespace
}  // namespace apple::lp
