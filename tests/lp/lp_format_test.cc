#include "lp/lp_format.h"

#include <gtest/gtest.h>

#include <sstream>

#include "lp/simplex.h"

namespace apple::lp {
namespace {

LpModel sample_model() {
  LpModel m;
  const VarId x = m.add_var(-3.0);
  const VarId y = m.add_var(-5.0, true);
  const VarId z = m.add_var(0.0);
  m.add_row(Sense::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Sense::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Sense::kGreaterEqual, -1.5, {{x, 3.0}, {y, -2.0}, {z, 0.5}});
  m.add_row(Sense::kEqual, 7.0, {{x, 1.0}, {z, 1.0}});
  return m;
}

TEST(LpFormat, WritesRecognizableSections) {
  std::ostringstream out;
  write_lp_format(sample_model(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
  EXPECT_NE(text.find("x1"), std::string::npos);
}

TEST(LpFormat, RoundTripPreservesStructure) {
  const LpModel original = sample_model();
  std::stringstream buffer;
  write_lp_format(original, buffer);
  const LpModel parsed = read_lp_format(buffer);

  ASSERT_EQ(parsed.num_vars(), original.num_vars());
  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  for (std::size_t v = 0; v < original.num_vars(); ++v) {
    EXPECT_DOUBLE_EQ(parsed.var(static_cast<VarId>(v)).objective,
                     original.var(static_cast<VarId>(v)).objective);
    EXPECT_EQ(parsed.var(static_cast<VarId>(v)).integer,
              original.var(static_cast<VarId>(v)).integer);
  }
  for (std::size_t r = 0; r < original.num_rows(); ++r) {
    const Row& a = original.row(static_cast<RowId>(r));
    const Row& b = parsed.row(static_cast<RowId>(r));
    EXPECT_EQ(a.sense, b.sense);
    EXPECT_DOUBLE_EQ(a.rhs, b.rhs);
    ASSERT_EQ(a.terms.size(), b.terms.size());
    for (std::size_t t = 0; t < a.terms.size(); ++t) {
      EXPECT_EQ(a.terms[t].first, b.terms[t].first);
      EXPECT_DOUBLE_EQ(a.terms[t].second, b.terms[t].second);
    }
  }
}

TEST(LpFormat, RoundTripPreservesOptimum) {
  LpModel m;
  const VarId x = m.add_var(-3.0);
  const VarId y = m.add_var(-5.0);
  m.add_row(Sense::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Sense::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Sense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  std::stringstream buffer;
  write_lp_format(m, buffer);
  const LpModel parsed = read_lp_format(buffer);
  const LpSolution a = SimplexSolver().solve(m);
  const LpSolution b = SimplexSolver().solve(parsed);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(LpFormat, EmptyObjectiveAndModel) {
  LpModel m;
  m.add_var(0.0);
  std::stringstream buffer;
  write_lp_format(m, buffer);
  const LpModel parsed = read_lp_format(buffer);
  EXPECT_EQ(parsed.num_vars(), 1u);
  EXPECT_EQ(parsed.num_rows(), 0u);
}

TEST(LpFormat, ParserRejectsGarbage) {
  std::istringstream bad("Maximize\n x0\nEnd\n");
  EXPECT_THROW(read_lp_format(bad), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(read_lp_format(empty), std::runtime_error);
}

TEST(LpFormat, NegativeRhsRoundTrips) {
  LpModel m;
  const VarId x = m.add_var(1.0);
  m.add_row(Sense::kGreaterEqual, -2.5, {{x, -1.0}});
  std::stringstream buffer;
  write_lp_format(m, buffer);
  const LpModel parsed = read_lp_format(buffer);
  ASSERT_EQ(parsed.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(parsed.row(0).rhs, -2.5);
  EXPECT_DOUBLE_EQ(parsed.row(0).terms[0].second, -1.0);
}

}  // namespace
}  // namespace apple::lp
