#include "lp/revised_simplex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "lp/mip.h"
#include "lp/simplex.h"
#include "obs/metrics.h"

namespace apple::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SimplexOptions dense_options() {
  SimplexOptions opt;
  opt.algorithm = SimplexAlgorithm::kDense;
  return opt;
}

SimplexOptions revised_options() {
  SimplexOptions opt;
  opt.algorithm = SimplexAlgorithm::kRevised;
  return opt;
}

// Random feasible transportation LP: sources ship to sinks, supply equals
// demand, costs positive — always bounded and feasible, heavy in equality
// rows (the degenerate case that stresses anti-cycling).
LpModel make_transportation(std::mt19937_64& rng, int sources, int sinks) {
  std::uniform_real_distribution<double> cost(1.0, 10.0);
  std::uniform_real_distribution<double> amount(1.0, 5.0);
  LpModel m;
  std::vector<std::vector<VarId>> ship(sources, std::vector<VarId>(sinks));
  for (int s = 0; s < sources; ++s) {
    for (int d = 0; d < sinks; ++d) ship[s][d] = m.add_var(cost(rng));
  }
  double total = 0.0;
  for (int s = 0; s < sources; ++s) {
    const double supply = amount(rng);
    total += supply;
    std::vector<std::pair<VarId, double>> terms;
    for (int d = 0; d < sinks; ++d) terms.emplace_back(ship[s][d], 1.0);
    m.add_row(Sense::kEqual, supply, terms);
  }
  for (int d = 0; d < sinks; ++d) {
    std::vector<std::pair<VarId, double>> terms;
    for (int s = 0; s < sources; ++s) terms.emplace_back(ship[s][d], 1.0);
    m.add_row(Sense::kEqual, total / sinks, terms);
  }
  return m;
}

// Random covering/packing LP with mixed row senses; feasible (x = 1 works:
// each >= row's rhs is below its coefficient sum) and bounded below.
LpModel make_mixed_rows(std::mt19937_64& rng, int vars, int rows) {
  std::uniform_real_distribution<double> cost(0.5, 5.0);
  std::uniform_real_distribution<double> coef(0.2, 2.0);
  std::uniform_int_distribution<int> pick(0, vars - 1);
  std::uniform_int_distribution<int> sense(0, 2);
  LpModel m;
  std::vector<VarId> xs;
  for (int v = 0; v < vars; ++v) xs.push_back(m.add_var(cost(rng)));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<VarId, double>> terms;
    double sum = 0.0;
    const int width = 2 + pick(rng) % 4;
    for (int t = 0; t < width; ++t) {
      const double c = coef(rng);
      terms.emplace_back(xs[static_cast<std::size_t>(pick(rng))], c);
      sum += c;
    }
    switch (sense(rng)) {
      case 0:
        m.add_row(Sense::kLessEqual, sum * 2.0, terms);
        break;
      case 1:
        m.add_row(Sense::kGreaterEqual, sum * 0.5, terms);
        break;
      default:
        m.add_row(Sense::kEqual, sum * 0.75, terms);
        break;
    }
  }
  return m;
}

TEST(RevisedSimplex, TextbookParityWithDense) {
  LpModel m;
  const VarId x = m.add_var(-3.0);
  const VarId y = m.add_var(-5.0);
  m.add_row(Sense::kLessEqual, 4.0, {{x, 1.0}});
  m.add_row(Sense::kLessEqual, 12.0, {{y, 2.0}});
  m.add_row(Sense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const LpSolution s = SimplexSolver(revised_options()).solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 6.0, 1e-9);
}

class RevisedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RevisedSweep, TransportationParityWithDense) {
  std::mt19937_64 rng(GetParam());
  const LpModel m = make_transportation(rng, 4, 5);
  const LpSolution dense = SimplexSolver(dense_options()).solve(m);
  const LpSolution revised = SimplexSolver(revised_options()).solve(m);
  ASSERT_EQ(dense.status, revised.status);
  ASSERT_TRUE(revised.optimal());
  EXPECT_NEAR(dense.objective, revised.objective, 1e-6);
  EXPECT_LE(m.max_violation(revised.x), 1e-7);
}

TEST_P(RevisedSweep, MixedRowParityWithDense) {
  std::mt19937_64 rng(GetParam() * 977 + 13);
  const LpModel m = make_mixed_rows(rng, 12, 10);
  const LpSolution dense = SimplexSolver(dense_options()).solve(m);
  const LpSolution revised = SimplexSolver(revised_options()).solve(m);
  ASSERT_EQ(dense.status, revised.status);
  if (dense.optimal()) {
    EXPECT_NEAR(dense.objective, revised.objective, 1e-6);
    EXPECT_LE(m.max_violation(revised.x), 1e-6);
  }
}

TEST_P(RevisedSweep, BoundOverlayParityWithDense) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  const LpModel m = make_transportation(rng, 4, 4);
  std::uniform_real_distribution<double> lo(0.0, 0.4);
  std::uniform_real_distribution<double> hi(0.8, 3.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<double> lower(m.num_vars(), 0.0);
  std::vector<double> upper(m.num_vars(), kInf);
  for (std::size_t v = 0; v < m.num_vars(); ++v) {
    if (coin(rng) < 0.5) lower[v] = lo(rng);
    if (coin(rng) < 0.5) upper[v] = hi(rng);
    if (coin(rng) < 0.1) upper[v] = lower[v];  // fixed variable
  }
  SolveContext ctx;
  ctx.lower = lower;
  ctx.upper = upper;
  const LpSolution dense = SimplexSolver(dense_options()).solve(m, ctx);
  const LpSolution revised = SimplexSolver(revised_options()).solve(m, ctx);
  ASSERT_EQ(dense.status, revised.status);
  if (dense.optimal()) {
    EXPECT_NEAR(dense.objective, revised.objective, 1e-6);
    for (std::size_t v = 0; v < m.num_vars(); ++v) {
      EXPECT_GE(revised.x[v], lower[v] - 1e-7);
      EXPECT_LE(revised.x[v], upper[v] + 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevisedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(RevisedSimplex, InfeasibleModelDetected) {
  LpModel m;
  const VarId x = m.add_var(1.0);
  const VarId y = m.add_var(1.0);
  m.add_row(Sense::kLessEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kGreaterEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution s = SimplexSolver(revised_options()).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(RevisedSimplex, UnboundedModelDetected) {
  LpModel m;
  const VarId x = m.add_var(-1.0);
  const VarId y = m.add_var(0.0);
  m.add_row(Sense::kLessEqual, 0.0, {{x, 1.0}, {y, -1.0}});
  const LpSolution s = SimplexSolver(revised_options()).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(RevisedSimplex, CrossedOverlayBoundsAreInfeasible) {
  LpModel m;
  const VarId x = m.add_var(1.0);
  m.add_row(Sense::kLessEqual, 5.0, {{x, 1.0}});
  std::vector<double> lower{2.0};
  std::vector<double> upper{1.0};
  SolveContext ctx;
  ctx.lower = lower;
  ctx.upper = upper;
  const LpSolution s = SimplexSolver(revised_options()).solve(m, ctx);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(RevisedSimplex, SolvesAreBitwiseDeterministic) {
  std::mt19937_64 rng(42);
  const LpModel m = make_transportation(rng, 5, 6);
  RevisedSimplex a(m, SimplexOptions{});
  RevisedSimplex b(m, SimplexOptions{});
  const LpSolution sa = a.solve({}, {});
  const LpSolution sb = b.solve({}, {});
  ASSERT_TRUE(sa.optimal());
  ASSERT_TRUE(sb.optimal());
  ASSERT_EQ(sa.x.size(), sb.x.size());
  EXPECT_EQ(sa.iterations, sb.iterations);
  EXPECT_EQ(0, std::memcmp(sa.x.data(), sb.x.data(),
                           sa.x.size() * sizeof(double)));
  EXPECT_EQ(std::memcmp(&sa.objective, &sb.objective, sizeof(double)), 0);
}

// The B&B warm-restart contract: after a bound tightening the parent basis
// is dual feasible, so solve_warm must agree with a cold solve of the same
// overlay and should get there in a handful of dual pivots.
TEST(RevisedSimplex, DualWarmRestartMatchesColdSolveOnNodeSequences) {
  std::size_t warm_solves = 0;
  std::size_t dual_engaged = 0;
  std::vector<std::size_t> dual_pivots_per_warm;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    const LpModel m = make_transportation(rng, 4, 5);
    RevisedSimplex warm_solver(m, SimplexOptions{});
    RevisedSimplex cold_solver(m, SimplexOptions{});
    std::vector<double> lower(m.num_vars(), 0.0);
    std::vector<double> upper(m.num_vars(), kInf);

    LpSolution parent = warm_solver.solve(lower, upper);
    ASSERT_TRUE(parent.optimal());
    SimplexBasis basis = warm_solver.basis();

    // Walk a B&B-like chain: repeatedly clamp the most fractional-looking
    // positive variable below its parent value, warm-restarting each time.
    std::uniform_int_distribution<std::size_t> pick(0, m.num_vars() - 1);
    for (int depth = 0; depth < 6; ++depth) {
      std::size_t v = pick(rng);
      bool found = false;
      for (std::size_t probe = 0; probe < m.num_vars(); ++probe) {
        const std::size_t cand = (v + probe) % m.num_vars();
        if (parent.x[cand] > lower[cand] + 0.5 && upper[cand] == kInf) {
          v = cand;
          found = true;
          break;
        }
      }
      if (!found) break;
      upper[v] = std::floor(parent.x[v] - 0.25);
      if (upper[v] < lower[v]) upper[v] = lower[v];

      const LpSolution warm = warm_solver.solve_warm(lower, upper, basis);
      ++warm_solves;
      dual_pivots_per_warm.push_back(warm_solver.stats().dual_pivots);
      if (warm_solver.stats().dual_pivots > 0) ++dual_engaged;
      const LpSolution cold = cold_solver.solve(lower, upper);
      ASSERT_EQ(warm.status, cold.status) << "seed=" << seed;
      if (!warm.optimal()) break;
      EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "seed=" << seed;
      // Warm restarts must be cheap: a handful of pivots, not a re-solve.
      EXPECT_LE(warm.iterations, cold.iterations + 5) << "seed=" << seed;
      parent = warm;
      basis = warm_solver.basis();
    }
  }
  ASSERT_GT(warm_solves, 0u);
  // The dual phase must actually engage (not silently cold-start), and the
  // median warm node must finish in <= 10 dual pivots (the ISSUE gate).
  EXPECT_GT(dual_engaged, 0u);
  std::sort(dual_pivots_per_warm.begin(), dual_pivots_per_warm.end());
  const std::size_t median =
      dual_pivots_per_warm[dual_pivots_per_warm.size() / 2];
  EXPECT_LE(median, 10u);
}

TEST(RevisedSimplex, ExpiredDeadlineStopsBeforePricing) {
  std::mt19937_64 rng(9);
  const LpModel m = make_transportation(rng, 5, 5);
  SimplexOptions opt;
  opt.algorithm = SimplexAlgorithm::kRevised;
  opt.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const LpSolution s = SimplexSolver(opt).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kIterationLimit);
  EXPECT_EQ(s.iterations, 0u);
}

// Satellite regression: a large LP with a near-future deadline must come
// back around the deadline (the BTRAN/FTRAN pricing loop polls it), not
// after running to optimality unchecked.
TEST(RevisedSimplex, DeadlineHonoredWithinToleranceOnLargeLp) {
  std::mt19937_64 rng(1234);
  const LpModel m = make_transportation(rng, 40, 40);  // 1600 cols, 80 rows
  SimplexOptions opt;
  opt.algorithm = SimplexAlgorithm::kRevised;
  opt.deadline_poll_pivots = 16;
  const auto start = std::chrono::steady_clock::now();
  opt.deadline = start + std::chrono::milliseconds(30);
  const LpSolution s = SimplexSolver(opt).solve(m);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Either the deadline fired (and the solve obeyed it promptly), or the
  // instance finished inside the budget — both respect the deadline. What
  // must never happen is a solve that blows far past it.
  EXPECT_LT(elapsed, 5.0);
  if (s.status != SolveStatus::kIterationLimit) {
    EXPECT_TRUE(s.optimal());
  }
}

// MIP parity: the revised+dual default must reproduce the dense engine's
// answers for every worker count, and the dual warm restart must engage.
TEST(RevisedSimplex, MipParityAcrossWorkersAndDualEngagement) {
  std::mt19937_64 rng(77);
  LpModel m;
  std::uniform_real_distribution<double> cost(1.0, 4.0);
  std::vector<VarId> xs;
  for (int v = 0; v < 8; ++v) xs.push_back(m.add_var(cost(rng), v % 2 == 0));
  for (int r = 0; r < 6; ++r) {
    std::vector<std::pair<VarId, double>> terms;
    double sum = 0.0;
    for (int t = 0; t < 3; ++t) {
      const double c = cost(rng);
      terms.emplace_back(xs[static_cast<std::size_t>((r + t * 3) % 8)], c);
      sum += c;
    }
    m.add_row(Sense::kGreaterEqual, sum * 0.9, terms);
  }

  MipOptions dense_mip;
  dense_mip.simplex.algorithm = SimplexAlgorithm::kDense;
  const MipResult reference = MipSolver(dense_mip).solve(m);

#if defined(APPLE_ENABLE_METRICS) && APPLE_ENABLE_METRICS
  const std::uint64_t dual_before =
      obs::default_registry().counter("lp.simplex.dual_pivots").value();
#endif
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    MipOptions mip;  // default: kAuto -> revised with dual warm restarts
    mip.num_workers = workers;
    const MipResult got = MipSolver(mip).solve(m);
    ASSERT_EQ(got.status, reference.status) << "workers=" << workers;
    if (reference.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(got.objective, reference.objective, 1e-6)
          << "workers=" << workers;
    }
  }
#if defined(APPLE_ENABLE_METRICS) && APPLE_ENABLE_METRICS
  const std::uint64_t dual_after =
      obs::default_registry().counter("lp.simplex.dual_pivots").value();
  EXPECT_GT(dual_after, dual_before)
      << "dual simplex never engaged across the B&B warm restarts";
#endif
}

}  // namespace
}  // namespace apple::lp
