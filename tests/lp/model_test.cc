#include "lp/model.h"

#include <gtest/gtest.h>

namespace apple::lp {
namespace {

TEST(LpModel, AddVarAndRow) {
  LpModel m;
  const VarId x = m.add_var(1.0);
  const VarId y = m.add_var(2.0, true, "y");
  EXPECT_EQ(m.num_vars(), 2u);
  EXPECT_TRUE(m.var(y).integer);
  EXPECT_EQ(m.var(y).name, "y");
  m.add_row(Sense::kLessEqual, 10.0, {{x, 1.0}, {y, 3.0}});
  EXPECT_EQ(m.num_rows(), 1u);
  EXPECT_EQ(m.row(0).terms.size(), 2u);
}

TEST(LpModel, MergesDuplicateTermsAndDropsZeros) {
  LpModel m;
  const VarId x = m.add_var(0.0);
  const VarId y = m.add_var(0.0);
  m.add_row(Sense::kEqual, 1.0, {{x, 2.0}, {x, 3.0}, {y, 0.0}});
  ASSERT_EQ(m.row(0).terms.size(), 1u);
  EXPECT_EQ(m.row(0).terms[0].first, x);
  EXPECT_DOUBLE_EQ(m.row(0).terms[0].second, 5.0);
}

TEST(LpModel, CancellingTermsDisappear) {
  LpModel m;
  const VarId x = m.add_var(0.0);
  m.add_row(Sense::kEqual, 0.0, {{x, 1.0}, {x, -1.0}});
  EXPECT_TRUE(m.row(0).terms.empty());
}

TEST(LpModel, RejectsUnknownVariable) {
  LpModel m;
  m.add_var(0.0);
  EXPECT_THROW(m.add_row(Sense::kEqual, 0.0, {{5, 1.0}}), std::out_of_range);
  EXPECT_THROW(m.add_row(Sense::kEqual, 0.0, {{-1, 1.0}}), std::out_of_range);
}

TEST(LpModel, HasIntegerVars) {
  LpModel m;
  m.add_var(0.0);
  EXPECT_FALSE(m.has_integer_vars());
  m.add_var(0.0, true);
  EXPECT_TRUE(m.has_integer_vars());
}

TEST(LpModel, ObjectiveValue) {
  LpModel m;
  m.add_var(2.0);
  m.add_var(-1.0);
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(m.objective_value(x), 2.0);
}

TEST(LpModel, MaxViolationFeasiblePoint) {
  LpModel m;
  const VarId x = m.add_var(0.0);
  const VarId y = m.add_var(0.0);
  m.add_row(Sense::kLessEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::kGreaterEqual, 1.0, {{x, 1.0}});
  m.add_row(Sense::kEqual, 2.0, {{y, 1.0}});
  const std::vector<double> ok{2.0, 2.0};
  EXPECT_DOUBLE_EQ(m.max_violation(ok), 0.0);
  const std::vector<double> bad{0.0, 7.0};
  EXPECT_DOUBLE_EQ(m.max_violation(bad), 5.0);  // y=7: eq off by 5, <= off by 2
}

TEST(LpModel, MaxViolationNegativeVariable) {
  LpModel m;
  m.add_var(0.0);
  const std::vector<double> x{-3.0};
  EXPECT_DOUBLE_EQ(m.max_violation(x), 3.0);
}

TEST(SolveStatusStrings, AllNamed) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace apple::lp
