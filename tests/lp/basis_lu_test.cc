#include "lp/basis_lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "lp/sparse.h"

namespace apple::lp {
namespace {

// Random sparse m x cols matrix in CSC form. Every column j < m carries a
// dominant diagonal entry at row j (so the basis [0..m) is well
// conditioned); extra columns j >= m carry their dominant entry at row
// j - m. Off-dominant entries appear with probability `density`.
SparseMatrix random_matrix(std::size_t m, std::size_t cols, double density,
                           std::mt19937& rng) {
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_real_distribution<double> diag(2.0, 4.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<std::int32_t> col_start{0};
  std::vector<SparseMatrix::Entry> entries;
  for (std::size_t j = 0; j < cols; ++j) {
    const std::size_t dom = j % m;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == dom) {
        entries.push_back({static_cast<std::int32_t>(r), diag(rng)});
      } else if (coin(rng) < density) {
        entries.push_back({static_cast<std::int32_t>(r), value(rng)});
      }
    }
    col_start.push_back(static_cast<std::int32_t>(entries.size()));
  }
  return SparseMatrix(m, cols, std::move(col_start), std::move(entries));
}

std::vector<std::vector<double>> dense_basis(const SparseMatrix& matrix,
                                             const std::vector<std::int32_t>&
                                                 basic) {
  const std::size_t m = matrix.rows();
  std::vector<std::vector<double>> b(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (const auto& e : matrix.column(static_cast<std::size_t>(basic[i]))) {
      b[static_cast<std::size_t>(e.row)][i] = e.value;
    }
  }
  return b;
}

// Reference solve via dense Gaussian elimination with partial pivoting.
// `transpose` solves B' x = rhs instead of B x = rhs.
std::vector<double> dense_solve(std::vector<std::vector<double>> a,
                                std::vector<double> rhs, bool transpose) {
  const std::size_t m = rhs.size();
  if (transpose) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) std::swap(a[i][j], a[j][i]);
    }
  }
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t pivot = k;
    for (std::size_t r = k + 1; r < m; ++r) {
      if (std::abs(a[r][k]) > std::abs(a[pivot][k])) pivot = r;
    }
    std::swap(a[k], a[pivot]);
    std::swap(rhs[k], rhs[pivot]);
    for (std::size_t r = k + 1; r < m; ++r) {
      const double f = a[r][k] / a[k][k];
      if (f == 0.0) continue;
      for (std::size_t c = k; c < m; ++c) a[r][c] -= f * a[k][c];
      rhs[r] -= f * rhs[k];
    }
  }
  std::vector<double> x(m, 0.0);
  for (std::size_t k = m; k-- > 0;) {
    double acc = rhs[k];
    for (std::size_t c = k + 1; c < m; ++c) acc -= a[k][c] * x[c];
    x[k] = acc / a[k][k];
  }
  return x;
}

TEST(BasisLu, FtranBtranMatchDenseReference) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  for (const std::size_t m : {1u, 3u, 10u, 40u}) {
    for (const double density : {0.05, 0.3, 0.8}) {
      const SparseMatrix matrix = random_matrix(m, m, density, rng);
      std::vector<std::int32_t> basic(m);
      for (std::size_t i = 0; i < m; ++i) {
        basic[i] = static_cast<std::int32_t>(i);
      }
      BasisLu lu;
      ASSERT_TRUE(lu.factorize(matrix, basic));
      const auto dense = dense_basis(matrix, basic);

      std::vector<double> rhs(m);
      for (double& v : rhs) v = value(rng);
      std::vector<double> w = rhs;
      lu.ftran(w);
      const std::vector<double> w_ref = dense_solve(dense, rhs, false);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(w[i], w_ref[i], 1e-9) << "m=" << m << " d=" << density;
      }

      std::vector<double> c(m);
      for (double& v : c) v = value(rng);
      std::vector<double> y = c;
      lu.btran(y);
      const std::vector<double> y_ref = dense_solve(dense, c, true);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(y[i], y_ref[i], 1e-9) << "m=" << m << " d=" << density;
      }
      EXPECT_GT(lu.fill_nnz(), 0u);
      EXPECT_EQ(lu.eta_count(), 0u);
    }
  }
}

TEST(BasisLu, EtaUpdatesMatchFreshFactorization) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  const std::size_t m = 25;
  // 2m columns: [0, m) is the starting basis, [m, 2m) the replacements
  // (column m + p is dominant in row p, keeping every swap nonsingular).
  const SparseMatrix matrix = random_matrix(m, 2 * m, 0.2, rng);
  std::vector<std::int32_t> basic(m);
  for (std::size_t i = 0; i < m; ++i) basic[i] = static_cast<std::int32_t>(i);

  BasisLu lu;
  ASSERT_TRUE(lu.factorize(matrix, basic));
  // Pivot k columns in through the eta file, one basis position at a time.
  const std::size_t k = 8;
  for (std::size_t p = 0; p < k; ++p) {
    const auto enter = static_cast<std::int32_t>(m + p);
    std::vector<double> w(m, 0.0);
    for (const auto& e : matrix.column(static_cast<std::size_t>(enter))) {
      w[static_cast<std::size_t>(e.row)] = e.value;
    }
    lu.ftran(w);
    ASSERT_TRUE(lu.update(w, p));
    basic[p] = enter;
  }
  EXPECT_EQ(lu.eta_count(), k);

  BasisLu fresh;
  ASSERT_TRUE(fresh.factorize(matrix, basic));

  // The eta-extended factorization and the fresh one represent the same
  // basis: FTRAN and BTRAN must agree on random vectors.
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> rhs(m);
    for (double& v : rhs) v = value(rng);
    std::vector<double> a = rhs;
    std::vector<double> b = rhs;
    lu.ftran(a);
    fresh.ftran(b);
    for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(a[i], b[i], 1e-8);
    a = rhs;
    b = rhs;
    lu.btran(a);
    fresh.btran(b);
    for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(a[i], b[i], 1e-8);
  }
}

TEST(BasisLu, SingularBasisReportsFailureNotNaN) {
  // Two identical columns: rank m-1.
  std::vector<std::int32_t> col_start{0, 2, 4, 5};
  std::vector<SparseMatrix::Entry> entries{
      {0, 1.0}, {1, 2.0}, {0, 1.0}, {1, 2.0}, {2, 1.0}};
  const SparseMatrix matrix(3, 3, std::move(col_start), std::move(entries));
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(matrix, std::vector<std::int32_t>{0, 1, 2}));
}

TEST(BasisLu, NearSingularPivotRejected) {
  // A column whose only entry is far below the singular tolerance.
  std::vector<std::int32_t> col_start{0, 1, 2};
  std::vector<SparseMatrix::Entry> entries{{0, 1.0}, {1, 1e-13}};
  const SparseMatrix matrix(2, 2, std::move(col_start), std::move(entries));
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(matrix, std::vector<std::int32_t>{0, 1}));
}

TEST(BasisLu, UnstableEtaPivotRejectedAndFactorizationUnchanged) {
  std::mt19937 rng(3);
  const std::size_t m = 6;
  const SparseMatrix matrix = random_matrix(m, m, 0.4, rng);
  std::vector<std::int32_t> basic(m);
  for (std::size_t i = 0; i < m; ++i) basic[i] = static_cast<std::int32_t>(i);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(matrix, basic));
  std::vector<double> before(m, 1.0);
  lu.ftran(before);

  // w with a ~zero pivot element must be rejected without side effects.
  std::vector<double> w(m, 1.0);
  w[2] = 1e-14;
  EXPECT_FALSE(lu.update(w, 2));
  EXPECT_EQ(lu.eta_count(), 0u);
  std::vector<double> after(m, 1.0);
  lu.ftran(after);
  for (std::size_t i = 0; i < m; ++i) EXPECT_EQ(before[i], after[i]);
}

TEST(BasisLu, EmptyBasisIsTriviallyFactorized) {
  const SparseMatrix matrix(0, 0, {0}, {});
  BasisLu lu;
  EXPECT_TRUE(lu.factorize(matrix, {}));
  EXPECT_TRUE(lu.factorized());
  std::vector<double> x;
  lu.ftran(x);
  lu.btran(x);
}

}  // namespace
}  // namespace apple::lp
