#include "sim/flow_sim.h"

#include <gtest/gtest.h>

namespace apple::sim {
namespace {

using dataplane::HostVisit;
using dataplane::SubclassPlan;
using vnf::NfType;
using vnf::VnfInstance;

SubclassPlan plan_through(traffic::ClassId cls,
                          std::vector<vnf::InstanceId> instances,
                          double weight = 1.0,
                          dataplane::SubclassId sub = 0) {
  SubclassPlan plan;
  plan.class_id = cls;
  plan.subclass_id = sub;
  plan.weight = weight;
  HostVisit visit;
  visit.at_switch = 0;
  visit.instances = std::move(instances);
  plan.itinerary = {visit};
  return plan;
}

TEST(FlowSimulation, NoLossUnderCapacity) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  sim.set_class_rate(0, 500.0);
  sim.install_class_plans(0, {plan_through(0, {1})});
  const TickStats stats = sim.step();
  EXPECT_DOUBLE_EQ(stats.offered_mbps, 500.0);
  EXPECT_DOUBLE_EQ(stats.delivered_mbps, 500.0);
  EXPECT_DOUBLE_EQ(stats.loss_rate, 0.0);
}

TEST(FlowSimulation, OverloadDropsExcess) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  sim.set_class_rate(0, 1800.0);
  sim.install_class_plans(0, {plan_through(0, {1})});
  const TickStats stats = sim.step();
  EXPECT_NEAR(stats.loss_rate, 0.5, 1e-12);
  EXPECT_NEAR(stats.delivered_mbps, 900.0, 1e-9);
}

TEST(FlowSimulation, BootingInstanceDropsEverything) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kNat, 0, 900.0},
                   /*ready_at=*/1.0);
  sim.set_class_rate(0, 100.0);
  sim.install_class_plans(0, {plan_through(0, {1})});
  // While booting: total loss (Fig. 7's throughput gap).
  EXPECT_DOUBLE_EQ(sim.step().loss_rate, 1.0);
  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(sim.step().loss_rate, 0.0);  // ready now
}

TEST(FlowSimulation, SharedInstanceAggregatesLoad) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  sim.set_class_rate(0, 600.0);
  sim.set_class_rate(1, 600.0);
  sim.install_class_plans(0, {plan_through(0, {1})});
  sim.install_class_plans(1, {plan_through(1, {1})});
  const TickStats stats = sim.step();
  // 1200 offered into 900 capacity: 25% loss.
  EXPECT_NEAR(stats.loss_rate, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(sim.instance_offered_mbps(1), 1200.0);
}

TEST(FlowSimulation, ChainLossCompounds) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 450.0});
  sim.add_instance(VnfInstance{2, NfType::kIds, 0, 450.0});
  sim.set_class_rate(0, 900.0);
  sim.install_class_plans(0, {plan_through(0, {1, 2})});
  const TickStats stats = sim.step();
  // Each stage passes 450/900 = 0.5; survival = 0.25.
  EXPECT_NEAR(stats.delivered_mbps, 900.0 * 0.25, 1e-9);
}

TEST(FlowSimulation, SubclassWeightsSplitLoad) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  sim.add_instance(VnfInstance{2, NfType::kFirewall, 1, 900.0});
  sim.set_class_rate(0, 1000.0);
  auto a = plan_through(0, {1}, 0.5, 0);
  auto b = plan_through(0, {2}, 0.5, 1);
  sim.install_class_plans(0, {a, b});
  const TickStats stats = sim.step();
  EXPECT_DOUBLE_EQ(stats.loss_rate, 0.0);
  EXPECT_DOUBLE_EQ(sim.instance_offered_mbps(1), 500.0);
  EXPECT_DOUBLE_EQ(sim.instance_offered_mbps(2), 500.0);
}

TEST(FlowSimulation, PlanValidation) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  EXPECT_THROW(sim.install_class_plans(0, {plan_through(0, {99})}),
               std::invalid_argument);
  EXPECT_THROW(sim.install_class_plans(0, {plan_through(0, {1}, 0.5)}),
               std::invalid_argument);
  auto neg = plan_through(0, {1}, -0.5);
  EXPECT_THROW(sim.install_class_plans(0, {neg}), std::invalid_argument);
  EXPECT_THROW(FlowSimulation(0.0), std::invalid_argument);
}

TEST(FlowSimulation, HistoryAndClockAdvance) {
  FlowSimulation sim(0.5);
  sim.set_class_rate(0, 10.0);
  sim.install_class_plans(0, {plan_through(0, {})});
  sim.run_until(2.0);
  EXPECT_EQ(sim.history().size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_DOUBLE_EQ(sim.history()[2].time, 1.0);
  // Empty itinerary means nothing to drop.
  EXPECT_DOUBLE_EQ(sim.history().back().loss_rate, 0.0);
}

TEST(FlowSimulation, RemoveInstance) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  EXPECT_TRUE(sim.has_instance(1));
  sim.remove_instance(1);
  EXPECT_FALSE(sim.has_instance(1));
}

TEST(FlowSimulation, ZeroRateClassCostsNothing) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  sim.set_class_rate(0, 0.0);
  sim.install_class_plans(0, {plan_through(0, {1})});
  const TickStats stats = sim.step();
  EXPECT_DOUBLE_EQ(stats.offered_mbps, 0.0);
  EXPECT_DOUBLE_EQ(stats.loss_rate, 0.0);
  EXPECT_DOUBLE_EQ(sim.instance_offered_mbps(1), 0.0);
}

TEST(FlowSimulation, DeadInstanceBlackholesItsSubclasses) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  sim.add_instance(VnfInstance{2, NfType::kFirewall, 0, 900.0});
  sim.set_class_rate(0, 400.0);
  sim.install_class_plans(
      0, {plan_through(0, {1}, 0.5, 0), plan_through(0, {2}, 0.5, 1)});

  sim.set_instance_alive(1, false);
  EXPECT_FALSE(sim.instance_alive(1));
  EXPECT_TRUE(sim.has_instance(1));  // stays installed: plans still dangle
  EXPECT_DOUBLE_EQ(sim.instance_capacity_mbps(1), 0.0);

  const TickStats stats = sim.step();
  // Only the sub-class through the dead instance is lost, and that loss is
  // attributed to the fault, not to congestion.
  EXPECT_DOUBLE_EQ(stats.offered_mbps, 400.0);
  EXPECT_NEAR(stats.delivered_mbps, 200.0, 1e-9);
  EXPECT_NEAR(stats.blackholed_mbps, 200.0, 1e-9);
  EXPECT_NEAR(sim.class_blackholed_mbps(0), 200.0, 1e-9);

  // Repair: the instance serves again immediately.
  sim.set_instance_alive(1, true);
  EXPECT_DOUBLE_EQ(sim.instance_capacity_mbps(1), 900.0);
  const TickStats after = sim.step();
  EXPECT_DOUBLE_EQ(after.blackholed_mbps, 0.0);
  EXPECT_NEAR(after.delivered_mbps, 400.0, 1e-9);
}

TEST(FlowSimulation, SeveredClassDeliversNothingButOthersAreUntouched) {
  FlowSimulation sim(0.01);
  sim.add_instance(VnfInstance{1, NfType::kFirewall, 0, 900.0});
  sim.set_class_rate(0, 300.0);
  sim.set_class_rate(1, 200.0);
  sim.install_class_plans(0, {plan_through(0, {1})});
  sim.install_class_plans(1, {plan_through(1, {1})});

  sim.set_class_severed(0, true);
  EXPECT_TRUE(sim.class_severed(0));
  EXPECT_FALSE(sim.class_severed(1));

  const TickStats stats = sim.step();
  EXPECT_DOUBLE_EQ(stats.offered_mbps, 500.0);  // severed demand still offers
  EXPECT_NEAR(stats.delivered_mbps, 200.0, 1e-9);
  EXPECT_NEAR(stats.blackholed_mbps, 300.0, 1e-9);
  EXPECT_NEAR(sim.class_blackholed_mbps(0), 300.0, 1e-9);
  EXPECT_DOUBLE_EQ(sim.class_blackholed_mbps(1), 0.0);
  // The severed class's traffic never reaches the instance.
  EXPECT_DOUBLE_EQ(sim.instance_offered_mbps(1), 200.0);

  sim.set_class_severed(0, false);
  const TickStats after = sim.step();
  EXPECT_DOUBLE_EQ(after.blackholed_mbps, 0.0);
  EXPECT_NEAR(after.delivered_mbps, 500.0, 1e-9);
}

}  // namespace
}  // namespace apple::sim
