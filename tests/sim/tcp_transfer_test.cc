#include "sim/tcp_transfer.h"

#include <gtest/gtest.h>

namespace apple::sim {
namespace {

const auto kNoLoss = [](double) { return 0.0; };

TEST(TcpTransfer, CompletesNearBottleneckRate) {
  TcpTransferConfig cfg;
  cfg.file_mbits = 160.0;  // 20 MB
  cfg.bottleneck_mbps = 94.0;
  const double t = simulate_tcp_transfer(cfg, kNoLoss);
  // Ideal time 160/94 = 1.70 s; AIMD ramp-up adds a little.
  EXPECT_GT(t, 160.0 / 94.0);
  EXPECT_LT(t, 2.0 * 160.0 / 94.0);
}

TEST(TcpTransfer, LossWindowDelaysCompletion) {
  TcpTransferConfig cfg;
  const double clean = simulate_tcp_transfer(cfg, kNoLoss);
  // Total outage for 4.2 s starting at t=0.5 (the Fig. 7 scenario: rules
  // flipped before the ClickOS VM finished booting).
  const auto outage = [](double t) {
    return (t >= 0.5 && t < 0.5 + 4.2) ? 1.0 : 0.0;
  };
  const double disturbed = simulate_tcp_transfer(cfg, outage);
  EXPECT_GT(disturbed, clean + 4.0);
}

TEST(TcpTransfer, FasterBottleneckFinishesSooner) {
  TcpTransferConfig slow, fast;
  slow.bottleneck_mbps = 50.0;
  fast.bottleneck_mbps = 200.0;
  EXPECT_LT(simulate_tcp_transfer(fast, kNoLoss),
            simulate_tcp_transfer(slow, kNoLoss));
}

TEST(TcpTransfer, GivesUpAtMaxDuration) {
  TcpTransferConfig cfg;
  cfg.max_duration = 1.0;
  const double t = simulate_tcp_transfer(cfg, [](double) { return 1.0; });
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(TcpTransfer, Validation) {
  TcpTransferConfig bad;
  bad.tick = 0.0;
  EXPECT_THROW(simulate_tcp_transfer(bad, kNoLoss), std::invalid_argument);
}

TEST(UdpLoss, IntegratesLossTimeline) {
  // 1 s outage in a 10 s flow: 10% loss.
  const auto outage = [](double t) { return t < 1.0 ? 1.0 : 0.0; };
  EXPECT_NEAR(udp_loss_fraction(10.0, 0.001, outage), 0.1, 1e-3);
  EXPECT_DOUBLE_EQ(udp_loss_fraction(5.0, 0.01, kNoLoss), 0.0);
  EXPECT_THROW(udp_loss_fraction(0.0, 0.01, kNoLoss),
               std::invalid_argument);
}

}  // namespace
}  // namespace apple::sim
