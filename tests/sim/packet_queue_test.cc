#include "sim/packet_queue.h"

#include <gtest/gtest.h>

namespace apple::sim {
namespace {

TEST(PacketQueue, NoLossBelowServiceRate) {
  QueueConfig cfg;
  cfg.service_pps = 8500.0;
  const QueueStats stats = simulate_packet_queue_cbr(cfg, 5000.0, 5.0);
  EXPECT_GT(stats.arrived, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_LE(stats.max_queue, 1u);  // arrivals never find a backlog
}

TEST(PacketQueue, SteadyOverloadConvergesToFluidLoss) {
  // 10 Kpps into an 8.5 Kpps server: the fluid model predicts 15% loss.
  QueueConfig cfg;
  cfg.service_pps = 8500.0;
  cfg.buffer_packets = 128;
  const QueueStats stats = simulate_packet_queue_cbr(cfg, 10000.0, 30.0);
  EXPECT_NEAR(stats.loss_rate(), 1.0 - 8500.0 / 10000.0, 0.01);
}

TEST(PacketQueue, BufferAbsorbsShortBurst) {
  // A 0.5 s 10 Kpps burst over a 1 Kpps base: excess 1.5 Kpps x 0.5 s = 750
  // packets. With a 1024-packet buffer the transient is absorbed with ZERO
  // loss — the effect behind the paper's 0%-loss failover (Sec. VIII-E).
  QueueConfig cfg;
  cfg.service_pps = 8500.0;
  cfg.buffer_packets = 1024;
  const RateSegment timeline[] = {
      {5.0, 1000.0},   // base
      {5.5, 10000.0},  // burst (detection + mitigation window)
      {10.0, 1000.0},  // mitigated
  };
  const QueueStats stats = simulate_packet_queue(cfg, timeline);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.max_queue, 500u);  // the burst really queued up
}

TEST(PacketQueue, SmallBufferDropsTheSameBurst) {
  QueueConfig cfg;
  cfg.service_pps = 8500.0;
  cfg.buffer_packets = 64;
  const RateSegment timeline[] = {
      {5.0, 1000.0},
      {5.5, 10000.0},
      {10.0, 1000.0},
  };
  const QueueStats stats = simulate_packet_queue(cfg, timeline);
  EXPECT_GT(stats.dropped, 0u);
}

TEST(PacketQueue, ZeroLossBufferBoundIsTight) {
  const double service = 8500.0, burst = 10000.0, duration = 0.5;
  const std::size_t bound = zero_loss_buffer_bound(service, burst, duration);
  QueueConfig enough;
  enough.service_pps = service;
  enough.buffer_packets = bound;
  const RateSegment timeline[] = {{duration, burst}};
  EXPECT_EQ(simulate_packet_queue(enough, timeline).dropped, 0u);

  QueueConfig scarce = enough;
  scarce.buffer_packets = bound / 2;
  EXPECT_GT(simulate_packet_queue(scarce, timeline).dropped, 0u);

  // No excess, no buffer needed.
  EXPECT_EQ(zero_loss_buffer_bound(service, service / 2, 1.0), 0u);
}

TEST(PacketQueue, QueueDrainsBetweenSegments) {
  QueueConfig cfg;
  cfg.service_pps = 1000.0;
  cfg.buffer_packets = 10000;
  // Burst, then silence long enough to drain, then another burst: the
  // second burst must start from an empty queue (same max as the first).
  const RateSegment one_burst[] = {{1.0, 2000.0}};
  const RateSegment two_bursts[] = {{1.0, 2000.0}, {10.0, 1.0}, {11.0, 2000.0}};
  const QueueStats a = simulate_packet_queue(cfg, one_burst);
  const QueueStats b = simulate_packet_queue(cfg, two_bursts);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(b.dropped, 0u);
}

TEST(PacketQueue, Validation) {
  QueueConfig bad;
  bad.service_pps = 0.0;
  EXPECT_THROW(simulate_packet_queue_cbr(bad, 100.0, 1.0),
               std::invalid_argument);
  QueueConfig ok;
  const RateSegment decreasing[] = {{2.0, 100.0}, {1.0, 100.0}};
  EXPECT_THROW(simulate_packet_queue(ok, decreasing), std::invalid_argument);
}

TEST(PacketQueue, ArrivalCountMatchesRateTimesDuration) {
  QueueConfig cfg;
  const QueueStats stats = simulate_packet_queue_cbr(cfg, 1000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(stats.arrived), 2000.0, 2.0);
}

}  // namespace
}  // namespace apple::sim
