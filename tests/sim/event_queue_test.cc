#include "sim/event_queue.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace apple::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, FifoAmongSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonExcludesLaterEvents) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(5.0, [&] { ++ran; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(5.0);
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> fired;
  // Periodic self-rescheduling task.
  std::function<void()> periodic = [&] {
    fired.push_back(q.now());
    if (q.now() < 0.45) q.schedule_in(0.1, periodic);
  };
  q.schedule_at(0.1, periodic);
  q.run_until(1.0);
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_NEAR(fired.back(), 0.5, 1e-9);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  double ran_at = -1.0;
  q.schedule_at(1.0, [&] { ran_at = q.now(); });  // in the past
  q.run_until(3.0);
  EXPECT_DOUBLE_EQ(ran_at, 2.0);
}

// Regression: schedule_at documents clamping of past times, but a NaN time
// used to slip through the clamp (NaN compares false against everything)
// and poison the heap order. Non-finite times are now contract violations.
TEST(EventQueueDeathTest, NonFiniteTimesAreRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(EventQueue().schedule_at(nan, [] {}), "check failed");
  EXPECT_DEATH(EventQueue().schedule_at(inf, [] {}), "check failed");
  EXPECT_DEATH(EventQueue().schedule_in(nan, [] {}), "check failed");
  EXPECT_DEATH(EventQueue().schedule_in(-inf, [] {}), "check failed");
  EXPECT_DEATH(EventQueue().run_until(nan), "check failed");
}

TEST(EventQueue, FiniteSchedulingStillWorksAfterContractHardening) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(0.5, [&] { ++ran; });
  q.schedule_in(1.0, [&] { ++ran; });
  q.run_until(2.0);
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, StepRunsExactlyOne) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(2.0, [&] { ++ran; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

}  // namespace
}  // namespace apple::sim
