#include "sim/detector.h"

#include <gtest/gtest.h>

#include <limits>

namespace apple::sim {
namespace {

TEST(OverloadDetector, TripsAboveThreshold) {
  DetectorConfig cfg;
  cfg.overload_threshold = 0.9;
  OverloadDetector det(cfg);
  // 900 Mbps capacity: trip above 810.
  EXPECT_FALSE(det.sample(0.0, 1, 500.0, 900.0).has_value());
  const auto event = det.sample(0.1, 1, 850.0, 900.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, LoadEventKind::kOverloaded);
  EXPECT_EQ(event->instance, 1u);
  EXPECT_TRUE(det.is_overloaded(1));
}

TEST(OverloadDetector, EdgeTriggeredNotLevelTriggered) {
  OverloadDetector det;
  ASSERT_TRUE(det.sample(0.0, 1, 1000.0, 900.0).has_value());
  // Still overloaded: no duplicate event.
  EXPECT_FALSE(det.sample(0.1, 1, 1000.0, 900.0).has_value());
}

TEST(OverloadDetector, HysteresisClearsOnlyBelowClearThreshold) {
  DetectorConfig cfg;
  cfg.overload_threshold = 0.9;
  cfg.clear_threshold = 0.45;
  OverloadDetector det(cfg);
  ASSERT_TRUE(det.sample(0.0, 1, 1000.0, 900.0).has_value());
  // Between clear and overload thresholds: still overloaded.
  EXPECT_FALSE(det.sample(0.1, 1, 600.0, 900.0).has_value());
  EXPECT_TRUE(det.is_overloaded(1));
  // Below the clear threshold (paper: roll back at 4 Kpps of 8.5): clears.
  const auto event = det.sample(0.2, 1, 300.0, 900.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, LoadEventKind::kCleared);
  EXPECT_FALSE(det.is_overloaded(1));
}

TEST(OverloadDetector, PerFlowCounterDelayPostponesDetection) {
  DetectorConfig cfg;
  cfg.poll_interval = 0.1;
  cfg.counter_delay = 1.0;  // per-flow counters lag ~1 s (Sec. VII-B)
  OverloadDetector det(cfg);
  // Rate jumps at t=0; the delayed counter still reads the old rate.
  EXPECT_FALSE(det.sample(0.0, 1, 1000.0, 900.0).has_value());
  EXPECT_FALSE(det.sample(0.5, 1, 1000.0, 900.0).has_value());
  // After the delay has elapsed, the high rate becomes visible.
  const auto event = det.sample(1.1, 1, 1000.0, 900.0);
  EXPECT_TRUE(event.has_value());
}

TEST(OverloadDetector, PerPortCountersDetectImmediately) {
  DetectorConfig cfg;
  cfg.counter_delay = 0.0;
  OverloadDetector det(cfg);
  EXPECT_TRUE(det.sample(0.0, 1, 1000.0, 900.0).has_value());
}

TEST(OverloadDetector, TracksInstancesIndependently) {
  OverloadDetector det;
  ASSERT_TRUE(det.sample(0.0, 1, 1000.0, 900.0).has_value());
  EXPECT_FALSE(det.sample(0.0, 2, 100.0, 900.0).has_value());
  EXPECT_TRUE(det.is_overloaded(1));
  EXPECT_FALSE(det.is_overloaded(2));
}

TEST(OverloadDetector, ForgetDropsState) {
  OverloadDetector det;
  ASSERT_TRUE(det.sample(0.0, 1, 1000.0, 900.0).has_value());
  det.forget(1);
  EXPECT_FALSE(det.is_overloaded(1));
  // A fresh overload event fires again after forgetting.
  EXPECT_TRUE(det.sample(0.1, 1, 1000.0, 900.0).has_value());
}

TEST(OverloadDetector, ZeroCapacityNeverTrips) {
  OverloadDetector det;
  EXPECT_FALSE(det.sample(0.0, 1, 1000.0, 0.0).has_value());
}

// Contract checks (common/check.h): a mis-configured detector aborts at
// construction instead of silently never polling or never clearing.
using DetectorConfigDeathTest = ::testing::Test;

TEST(DetectorConfigDeathTest, RejectsNonPositivePollInterval) {
  DetectorConfig cfg;
  cfg.poll_interval = 0.0;
  EXPECT_DEATH(OverloadDetector{cfg}, "detector.cc:[0-9]+: check failed:");
}

TEST(DetectorConfigDeathTest, RejectsNonFinitePollInterval) {
  DetectorConfig cfg;
  cfg.poll_interval = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(OverloadDetector{cfg}, "detector.cc:[0-9]+: check failed:");
}

TEST(DetectorConfigDeathTest, RejectsNegativeCounterDelay) {
  DetectorConfig cfg;
  cfg.counter_delay = -0.5;
  EXPECT_DEATH(OverloadDetector{cfg}, "detector.cc:[0-9]+: check failed:");
}

TEST(DetectorConfigDeathTest, RejectsInvertedHysteresis) {
  DetectorConfig cfg;
  cfg.overload_threshold = 0.5;
  cfg.clear_threshold = 0.9;  // clear above overload: would never clear
  EXPECT_DEATH(OverloadDetector{cfg}, "detector.cc:[0-9]+: check failed:");
}

}  // namespace
}  // namespace apple::sim
