#include <gtest/gtest.h>

#include "baselines/comb.h"
#include "baselines/ingress.h"
#include "baselines/pace.h"
#include "baselines/properties.h"
#include "baselines/steering.h"
#include "core/optimization_engine.h"
#include "net/topologies.h"
#include "traffic/synthesis.h"

namespace apple::baseline {
namespace {

using vnf::NfType;

struct Scenario {
  net::Topology topo;
  net::AllPairsPaths routing;
  std::vector<vnf::PolicyChain> chains;
  std::vector<traffic::TrafficClass> classes;
  core::PlacementInput input;

  explicit Scenario(std::uint64_t seed = 1)
      : topo(net::make_internet2()), routing(topo) {
    const auto span = vnf::default_policy_chains();
    chains.assign(span.begin(), span.end());
    const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
        topo.num_nodes(), {.total_mbps = 10000.0, .seed = seed});
    classes = traffic::build_classes(
        topo, routing, tm, traffic::uniform_chain_assignment(chains.size()));
    input.topology = &topo;
    input.classes = classes;
    input.chains = chains;
  }
};

TEST(Ingress, EnforcesEverythingAtIngress) {
  Scenario s;
  const core::PlacementPlan plan = place_ingress(s.input);
  ASSERT_TRUE(plan.feasible);
  // Every class processed entirely at path position 0.
  for (std::size_t h = 0; h < s.classes.size(); ++h) {
    for (std::size_t j = 0; j < s.chains[s.classes[h].chain_id].size(); ++j) {
      EXPECT_DOUBLE_EQ(plan.distribution[h].fraction[0][j], 1.0);
    }
  }
}

TEST(Ingress, UsesMoreCoresThanApple) {
  // Fig. 11's claim: APPLE multiplexes instances across classes; the
  // ingress strawman cannot.
  Scenario s;
  core::EngineOptions opts;
  opts.strategy = core::PlacementStrategy::kGreedy;
  const core::PlacementPlan apple =
      core::OptimizationEngine(opts).place(s.input);
  const core::PlacementPlan ingress = place_ingress(s.input);
  ASSERT_TRUE(apple.feasible);
  EXPECT_GT(ingress.total_cores(), apple.total_cores());
}

TEST(Ingress, ResourceRespectingModeFlagsOverflow) {
  Scenario s;
  // Shrink hosts until some ingress host cannot take its load.
  for (net::NodeId v = 0; v < s.topo.num_nodes(); ++v) {
    s.topo.node(v).host_cores = 8.0;
  }
  const core::PlacementPlan plan = place_ingress(s.input, true);
  EXPECT_FALSE(plan.feasible);
}

TEST(Steering, ReroutesFlowsThroughSites) {
  Scenario s;
  const SteeringPlacement steering = place_steering(s.input, s.routing);
  EXPECT_GT(steering.classes_rerouted, 0u);      // interference!
  EXPECT_GT(steering.mean_path_stretch, 1.0);    // extra path length
  EXPECT_EQ(steering.new_paths.size(), s.classes.size());
  // Instances exist only at the configured number of sites.
  std::size_t sites_used = 0;
  for (net::NodeId v = 0; v < s.topo.num_nodes(); ++v) {
    bool any = false;
    for (std::size_t n = 0; n < vnf::kNumNfTypes; ++n) {
      if (steering.plan.instance_count[v][n] > 0) any = true;
    }
    if (any) ++sites_used;
  }
  EXPECT_LE(sites_used, 2u);
}

TEST(Steering, ValidatesSiteCount) {
  Scenario s;
  EXPECT_THROW(place_steering(s.input, s.routing, {.num_nf_sites = 0}),
               std::invalid_argument);
  EXPECT_THROW(place_steering(s.input, s.routing, {.num_nf_sites = 99}),
               std::invalid_argument);
}

TEST(Comb, ConsolidatesOnPath) {
  Scenario s;
  const CombPlacement comb = place_comb(s.input);
  ASSERT_TRUE(comb.plan.feasible);
  EXPECT_FALSE(comb.isolation);  // threads, not VMs
  // Each class's whole chain sits at exactly one path position.
  for (std::size_t h = 0; h < s.classes.size(); ++h) {
    const auto& frac = comb.plan.distribution[h].fraction;
    std::size_t positions_used = 0;
    for (std::size_t i = 0; i < frac.size(); ++i) {
      bool used = false;
      for (const double d : frac[i]) used = used || d > 0.0;
      if (used) {
        ++positions_used;
        for (const double d : frac[i]) EXPECT_DOUBLE_EQ(d, 1.0);
      }
    }
    EXPECT_EQ(positions_used, 1u);
  }
  EXPECT_LT(comb.consolidated_cores(), comb.plan.total_cores());
}

TEST(Pace, IgnoresChainsAndLosesEnforcement) {
  Scenario s;
  const PacePlacement pace = place_pace(s.input);
  // Chain-oblivious placement strands stages off-path.
  EXPECT_GT(pace.off_path_stages, 0u);
  EXPECT_FALSE(pace.plan.feasible);
}

TEST(TableI, PropertyMatrixMatchesPaper) {
  Scenario s;
  const auto rows = evaluate_frameworks(s.input, s.routing);
  ASSERT_EQ(rows.size(), 5u);

  const auto find = [&](const std::string& needle) {
    for (const FrameworkProperties& row : rows) {
      if (row.framework.find(needle) != std::string::npos) return row;
    }
    ADD_FAILURE() << "framework not found: " << needle;
    return FrameworkProperties{};
  };

  // Table I, reproduced mechanically:
  const auto steering = find("SIMPLE");
  EXPECT_TRUE(steering.policy_enforcement);
  EXPECT_FALSE(steering.interference_free);
  EXPECT_TRUE(steering.isolation);

  const auto pace = find("PACE");
  EXPECT_FALSE(pace.policy_enforcement);
  EXPECT_TRUE(pace.interference_free);
  EXPECT_TRUE(pace.isolation);

  const auto comb = find("CoMb");
  EXPECT_TRUE(comb.policy_enforcement);
  EXPECT_TRUE(comb.interference_free);
  EXPECT_FALSE(comb.isolation);

  const auto apple = find("APPLE");
  EXPECT_TRUE(apple.policy_enforcement);
  EXPECT_TRUE(apple.interference_free);
  EXPECT_TRUE(apple.isolation);
}

}  // namespace
}  // namespace apple::baseline
