#include "hsa/classifier.h"

#include <gtest/gtest.h>

#include <random>

namespace apple::hsa {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  BddManager mgr_ = make_header_space_manager();
  PredicateBuilder b_{mgr_};
};

TEST_F(ClassifierTest, RoutesHttpThroughItsChain) {
  // Paper intro example: all http traffic -> firewall -> IDS -> web proxy.
  const std::vector<PolicyRule> rules{
      {mgr_.apply_and(b_.exact(Field::kProto, 6),
                      b_.exact(Field::kDstPort, 80)),
       /*chain=*/1},
  };
  const FlowClassifier cls(mgr_, rules);
  PacketHeader http;
  http.proto = 6;
  http.dst_port = 80;
  EXPECT_EQ(cls.chain_of(http), 1u);
  PacketHeader dns;
  dns.proto = 17;
  dns.dst_port = 53;
  EXPECT_EQ(cls.chain_of(dns), std::nullopt);
}

TEST_F(ClassifierTest, FirstMatchWinsOnOverlap) {
  const std::vector<PolicyRule> rules{
      {b_.cidr(Field::kSrcIp, "10.1.0.0/16"), 7},
      {b_.cidr(Field::kSrcIp, "10.0.0.0/8"), 3},
  };
  const FlowClassifier cls(mgr_, rules);
  PacketHeader h;
  h.src_ip = parse_ipv4("10.1.2.3");  // matches both; rule 0 wins
  EXPECT_EQ(cls.chain_of(h), 7u);
  h.src_ip = parse_ipv4("10.99.2.3");  // only rule 1
  EXPECT_EQ(cls.chain_of(h), 3u);
}

TEST_F(ClassifierTest, AtomIdsSeparateRuleCombinations) {
  const std::vector<PolicyRule> rules{
      {b_.cidr(Field::kSrcIp, "10.0.0.0/8"), 0},
      {b_.exact(Field::kProto, 6), 1},
  };
  const FlowClassifier cls(mgr_, rules);
  PacketHeader a, b, c;
  a.src_ip = parse_ipv4("10.1.1.1");
  a.proto = 6;
  b.src_ip = parse_ipv4("10.1.1.1");
  b.proto = 17;
  c.src_ip = parse_ipv4("11.1.1.1");
  c.proto = 6;
  EXPECT_NE(cls.atom_of(a), cls.atom_of(b));
  EXPECT_NE(cls.atom_of(a), cls.atom_of(c));
  EXPECT_NE(cls.atom_of(b), cls.atom_of(c));
  // Same combination -> same atom.
  PacketHeader a2 = a;
  a2.src_ip = parse_ipv4("10.200.1.1");
  EXPECT_EQ(cls.atom_of(a), cls.atom_of(a2));
}

TEST_F(ClassifierTest, NumAtomsBounded) {
  const std::vector<PolicyRule> rules{
      {b_.cidr(Field::kSrcIp, "10.0.0.0/8"), 0},
      {b_.cidr(Field::kDstIp, "10.0.0.0/8"), 1},
      {b_.exact(Field::kProto, 6), 2},
  };
  const FlowClassifier cls(mgr_, rules);
  // k predicates make at most 2^k atoms.
  EXPECT_LE(cls.num_atoms(), 8u);
  EXPECT_GE(cls.num_atoms(), 4u);
}

TEST(FlowHash, DeterministicAndDistinct) {
  PacketHeader a;
  a.src_ip = 1;
  a.dst_ip = 2;
  a.src_port = 3;
  a.dst_port = 4;
  a.proto = 6;
  EXPECT_DOUBLE_EQ(flow_hash_unit(a), flow_hash_unit(a));
  PacketHeader b = a;
  b.src_port = 5;
  EXPECT_NE(flow_hash_unit(a), flow_hash_unit(b));
}

TEST(FlowHash, ApproximatelyUniform) {
  // Sec. V-A: "If flows are uniformly hashed to [0,1), this sub-class
  // approximately includes 50% flows of this class."
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::uint32_t> ip(0, 0xffffffffu);
  std::uniform_int_distribution<std::uint32_t> port(0, 0xffffu);
  const int kFlows = 20000;
  int below_half = 0;
  double sum = 0.0;
  for (int i = 0; i < kFlows; ++i) {
    PacketHeader h;
    h.src_ip = ip(rng);
    h.dst_ip = ip(rng);
    h.src_port = static_cast<std::uint16_t>(port(rng));
    h.dst_port = static_cast<std::uint16_t>(port(rng));
    h.proto = 6;
    const double u = flow_hash_unit(h);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    if (u < 0.5) ++below_half;
  }
  EXPECT_NEAR(sum / kFlows, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(below_half) / kFlows, 0.5, 0.02);
}

}  // namespace
}  // namespace apple::hsa
