#include "hsa/predicate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace apple::hsa {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  BddManager mgr_ = make_header_space_manager();
  PredicateBuilder b_{mgr_};
};

TEST_F(PredicateTest, FieldLayoutCoversHeader) {
  EXPECT_EQ(field_offset(Field::kSrcIp), 0u);
  EXPECT_EQ(field_offset(Field::kProto) + field_width(Field::kProto),
            kHeaderBits);
  EXPECT_EQ(mgr_.num_vars(), kHeaderBits);
}

TEST_F(PredicateTest, ParseIpv4) {
  EXPECT_EQ(parse_ipv4("10.1.1.0"), 0x0a010100u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_THROW(parse_ipv4("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("1.2.3.4.5"), std::invalid_argument);
}

TEST_F(PredicateTest, ExactMatch) {
  const BddRef p = b_.exact(Field::kProto, 6);  // TCP
  PacketHeader h;
  h.proto = 6;
  EXPECT_TRUE(b_.matches(p, h));
  h.proto = 17;
  EXPECT_FALSE(b_.matches(p, h));
}

TEST_F(PredicateTest, PrefixMatch) {
  // 10.1.1.0/24 (paper's running example in Sec. V-A).
  const BddRef p = b_.cidr(Field::kSrcIp, "10.1.1.0/24");
  PacketHeader h;
  h.src_ip = parse_ipv4("10.1.1.77");
  EXPECT_TRUE(b_.matches(p, h));
  h.src_ip = parse_ipv4("10.1.2.77");
  EXPECT_FALSE(b_.matches(p, h));
}

TEST_F(PredicateTest, SubPrefixSplitsInHalf) {
  // <10.1.1.128/25> is exactly half of <10.1.1.0/24> (Sec. V-A).
  const BddRef whole = b_.cidr(Field::kSrcIp, "10.1.1.0/24");
  const BddRef upper = b_.cidr(Field::kSrcIp, "10.1.1.128/25");
  EXPECT_TRUE(mgr_.implies(upper, whole));
  EXPECT_DOUBLE_EQ(mgr_.sat_count(upper) * 2.0, mgr_.sat_count(whole));
}

TEST_F(PredicateTest, ZeroLengthPrefixMatchesAll) {
  EXPECT_EQ(b_.prefix(Field::kDstIp, 0, 0), kBddTrue);
  EXPECT_EQ(b_.cidr(Field::kDstIp, "0.0.0.0/0"), kBddTrue);
}

TEST_F(PredicateTest, PrefixValidation) {
  EXPECT_THROW(b_.prefix(Field::kProto, 0, 9), std::invalid_argument);
  EXPECT_THROW(b_.prefix(Field::kProto, 300, 8), std::invalid_argument);
  EXPECT_THROW(b_.cidr(Field::kProto, "1.2.3.4/8"), std::invalid_argument);
  EXPECT_THROW(b_.cidr(Field::kSrcIp, "1.2.3.4/40"), std::invalid_argument);
}

TEST_F(PredicateTest, RangeMatch) {
  const BddRef p = b_.range(Field::kDstPort, 80, 443);
  PacketHeader h;
  for (const int port : {80, 81, 250, 443}) {
    h.dst_port = static_cast<std::uint16_t>(port);
    EXPECT_TRUE(b_.matches(p, h)) << port;
  }
  for (const int port : {79, 444, 8080, 0}) {
    h.dst_port = static_cast<std::uint16_t>(port);
    EXPECT_FALSE(b_.matches(p, h)) << port;
  }
}

TEST_F(PredicateTest, RangeSatCountIsExact) {
  const BddRef p = b_.range(Field::kDstPort, 1000, 1999);
  // 1000 ports x 2^(104-16) remaining freedom.
  EXPECT_DOUBLE_EQ(mgr_.sat_count(p) / std::pow(2.0, 88.0), 1000.0);
}

TEST_F(PredicateTest, DegenerateAndFullRanges) {
  EXPECT_EQ(b_.range(Field::kProto, 6, 6), b_.exact(Field::kProto, 6));
  EXPECT_EQ(b_.range(Field::kProto, 0, 255), kBddTrue);
  EXPECT_EQ(b_.range(Field::kSrcIp, 0, 0xffffffffu), kBddTrue);
  EXPECT_THROW(b_.range(Field::kProto, 7, 6), std::invalid_argument);
  EXPECT_THROW(b_.range(Field::kProto, 0, 256), std::invalid_argument);
}

TEST_F(PredicateTest, FromHeaderIsAPoint) {
  PacketHeader h;
  h.src_ip = parse_ipv4("192.168.1.5");
  h.dst_ip = parse_ipv4("10.0.0.9");
  h.src_port = 5555;
  h.dst_port = 80;
  h.proto = 6;
  const BddRef point = b_.from_header(h);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(point), 1.0);
  EXPECT_TRUE(b_.matches(point, h));
  PacketHeader other = h;
  other.dst_port = 81;
  EXPECT_FALSE(b_.matches(point, other));
}

TEST_F(PredicateTest, CombinedFieldsIntersect) {
  const BddRef web = mgr_.apply_and(b_.exact(Field::kProto, 6),
                                    b_.exact(Field::kDstPort, 80));
  const BddRef subnet = b_.cidr(Field::kSrcIp, "10.0.0.0/8");
  const BddRef rule = mgr_.apply_and(web, subnet);
  PacketHeader h;
  h.proto = 6;
  h.dst_port = 80;
  h.src_ip = parse_ipv4("10.20.30.40");
  EXPECT_TRUE(b_.matches(rule, h));
  h.src_ip = parse_ipv4("11.20.30.40");
  EXPECT_FALSE(b_.matches(rule, h));
}

}  // namespace
}  // namespace apple::hsa
