#include "hsa/atomic.h"

#include <gtest/gtest.h>

#include <random>

#include "hsa/predicate.h"

namespace apple::hsa {
namespace {

class AtomicTest : public ::testing::Test {
 protected:
  BddManager mgr_ = make_header_space_manager();
  PredicateBuilder b_{mgr_};
};

TEST_F(AtomicTest, EmptyInputYieldsSingleTrueAtom) {
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, {});
  ASSERT_EQ(atoms.atoms.size(), 1u);
  EXPECT_EQ(atoms.atoms[0], kBddTrue);
  EXPECT_TRUE(atoms.membership.empty());
}

TEST_F(AtomicTest, SinglePredicateSplitsSpaceInTwo) {
  const std::vector<BddRef> preds{b_.cidr(Field::kSrcIp, "10.0.0.0/8")};
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, preds);
  ASSERT_EQ(atoms.atoms.size(), 2u);
  ASSERT_EQ(atoms.membership.size(), 1u);
  ASSERT_EQ(atoms.membership[0].size(), 1u);
  EXPECT_EQ(atoms.atoms[atoms.membership[0][0]], preds[0]);
}

TEST_F(AtomicTest, TrivialTruePredicate) {
  const std::vector<BddRef> preds{kBddTrue};
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, preds);
  ASSERT_EQ(atoms.atoms.size(), 1u);
  EXPECT_EQ(atoms.membership[0], (std::vector<std::size_t>{0}));
}

TEST_F(AtomicTest, OverlappingPredicatesMakeThreeAtoms) {
  // Two overlapping /8s cannot overlap; use src and dst fields to overlap.
  const std::vector<BddRef> preds{
      b_.cidr(Field::kSrcIp, "10.0.0.0/8"),
      b_.exact(Field::kProto, 6),
  };
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, preds);
  // Atoms: 10/8&tcp, 10/8&!tcp, !10/8&tcp, !10/8&!tcp -> 4.
  EXPECT_EQ(atoms.atoms.size(), 4u);
  EXPECT_EQ(atoms.membership[0].size(), 2u);
  EXPECT_EQ(atoms.membership[1].size(), 2u);
}

TEST_F(AtomicTest, NestedPredicates) {
  const std::vector<BddRef> preds{
      b_.cidr(Field::kSrcIp, "10.1.1.0/24"),
      b_.cidr(Field::kSrcIp, "10.1.1.128/25"),  // subset of the first
  };
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, preds);
  // Atoms: /25, /24 minus /25, rest -> 3.
  ASSERT_EQ(atoms.atoms.size(), 3u);
  EXPECT_EQ(atoms.membership[0].size(), 2u);
  EXPECT_EQ(atoms.membership[1].size(), 1u);
}

TEST_F(AtomicTest, AtomsAreDisjointAndExhaustive) {
  const std::vector<BddRef> preds{
      b_.cidr(Field::kSrcIp, "10.0.0.0/8"),
      b_.cidr(Field::kDstIp, "192.168.0.0/16"),
      b_.exact(Field::kProto, 17),
      b_.range(Field::kDstPort, 80, 443),
  };
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, preds);
  BddRef all = kBddFalse;
  for (std::size_t i = 0; i < atoms.atoms.size(); ++i) {
    EXPECT_FALSE(mgr_.is_false(atoms.atoms[i]));  // non-empty
    for (std::size_t j = i + 1; j < atoms.atoms.size(); ++j) {
      EXPECT_TRUE(mgr_.disjoint(atoms.atoms[i], atoms.atoms[j]));
    }
    all = mgr_.apply_or(all, atoms.atoms[i]);
  }
  EXPECT_TRUE(mgr_.is_true(all));  // exhaustive
}

TEST_F(AtomicTest, MembershipReconstructsPredicates) {
  const std::vector<BddRef> preds{
      b_.cidr(Field::kSrcIp, "10.0.0.0/9"),
      b_.cidr(Field::kSrcIp, "10.0.0.0/8"),
      b_.exact(Field::kDstPort, 53),
  };
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, preds);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    BddRef rebuilt = kBddFalse;
    for (const std::size_t a : atoms.membership[i]) {
      rebuilt = mgr_.apply_or(rebuilt, atoms.atoms[a]);
    }
    EXPECT_EQ(rebuilt, preds[i]) << "predicate " << i;
  }
}

TEST_F(AtomicTest, AtomOfPointFindsContainingAtom) {
  const std::vector<BddRef> preds{b_.cidr(Field::kSrcIp, "10.0.0.0/8")};
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, preds);
  PacketHeader h;
  h.src_ip = parse_ipv4("10.5.5.5");
  const std::size_t inside = atom_of_point(mgr_, atoms, b_.from_header(h));
  h.src_ip = parse_ipv4("11.5.5.5");
  const std::size_t outside = atom_of_point(mgr_, atoms, b_.from_header(h));
  EXPECT_NE(inside, outside);
  EXPECT_TRUE(mgr_.implies(atoms.atoms[inside], preds[0]));
  EXPECT_TRUE(mgr_.disjoint(atoms.atoms[outside], preds[0]));
}

TEST_F(AtomicTest, AtomOfPointRejectsEmpty) {
  const AtomicPredicates atoms = compute_atomic_predicates(mgr_, {});
  EXPECT_THROW(atom_of_point(mgr_, atoms, kBddFalse), std::invalid_argument);
}

TEST_F(AtomicTest, ParallelRefinementMatchesSerialExactly) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::uint32_t> ip(0, 0xffffffffu);
  std::uniform_int_distribution<std::uint32_t> plen(4, 20);
  std::vector<BddRef> preds;
  for (int i = 0; i < 24; ++i) {
    const BddRef p = mgr_.apply_and(b_.prefix(Field::kSrcIp, ip(rng), plen(rng)),
                                    b_.prefix(Field::kDstIp, ip(rng), plen(rng)));
    if (!mgr_.is_false(p)) preds.push_back(p);
  }
  ASSERT_GE(preds.size(), 16u);
  const AtomicPredicates serial = compute_atomic_predicates(mgr_, preds);
  for (const std::size_t workers : {2u, 3u, 4u, 8u}) {
    AtomicOptions opt;
    opt.num_workers = workers;
    const AtomicPredicates parallel =
        compute_atomic_predicates(mgr_, preds, opt);
    // Same atoms, same order, same memberships — refs are hash-consed in
    // one shared manager, so EQ means identical BDDs.
    EXPECT_EQ(parallel.atoms, serial.atoms) << workers << " workers";
    EXPECT_EQ(parallel.membership, serial.membership) << workers << " workers";
  }
}

TEST_F(AtomicTest, ParallelPathHandlesDegenerateSlices) {
  // Fewer predicates than workers: trailing slices are empty and the merge
  // must still reproduce the serial result.
  const std::vector<BddRef> preds{
      b_.cidr(Field::kSrcIp, "10.0.0.0/8"),
      b_.exact(Field::kProto, 6),
  };
  const AtomicPredicates serial = compute_atomic_predicates(mgr_, preds);
  AtomicOptions opt;
  opt.num_workers = 8;
  const AtomicPredicates parallel = compute_atomic_predicates(mgr_, preds, opt);
  EXPECT_EQ(parallel.atoms, serial.atoms);
  EXPECT_EQ(parallel.membership, serial.membership);
}

TEST_F(AtomicTest, OptionsRejectZeroWorkers) {
  AtomicOptions opt;
  opt.num_workers = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  const std::vector<BddRef> preds{b_.cidr(Field::kSrcIp, "10.0.0.0/8")};
  EXPECT_THROW(compute_atomic_predicates(mgr_, preds, opt),
               std::invalid_argument);
}

// Property sweep: random predicate sets keep the partition invariants.
class AtomicRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(AtomicRandomSweep, PartitionInvariants) {
  BddManager mgr = make_header_space_manager();
  const PredicateBuilder b(mgr);
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> ip(0, 0xffffffffu);
  std::uniform_int_distribution<std::uint32_t> plen(4, 24);
  std::vector<BddRef> preds;
  for (int i = 0; i < 6; ++i) {
    preds.push_back(b.prefix(Field::kSrcIp, ip(rng), plen(rng)));
  }
  const AtomicPredicates atoms = compute_atomic_predicates(mgr, preds);
  // Disjoint + exhaustive + every membership list rebuilds its predicate.
  double total = 0.0;
  for (const BddRef a : atoms.atoms) total += mgr.sat_count(a);
  EXPECT_DOUBLE_EQ(total, std::pow(2.0, 104.0));
  for (std::size_t i = 0; i < preds.size(); ++i) {
    BddRef rebuilt = kBddFalse;
    for (const std::size_t a : atoms.membership[i]) {
      rebuilt = mgr.apply_or(rebuilt, atoms.atoms[a]);
    }
    EXPECT_EQ(rebuilt, preds[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomicRandomSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace apple::hsa
