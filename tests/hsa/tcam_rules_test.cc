#include "hsa/tcam_rules.h"

#include <gtest/gtest.h>

#include <random>

namespace apple::hsa {
namespace {

class TcamRulesTest : public ::testing::Test {
 protected:
  BddManager mgr_ = make_header_space_manager();
  PredicateBuilder b_{mgr_};
};

TEST_F(TcamRulesTest, FalseIsEmpty) {
  EXPECT_TRUE(enumerate_tcam_entries(mgr_, kBddFalse).empty());
  EXPECT_EQ(count_tcam_entries(mgr_, kBddFalse), 0u);
}

TEST_F(TcamRulesTest, TrueIsOneFullyWildcardedEntry) {
  const auto entries = enumerate_tcam_entries(mgr_, kBddTrue);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].wildcard_bits(), kHeaderBits);
  PacketHeader any;
  any.src_ip = 0xdeadbeef;
  EXPECT_TRUE(entries[0].matches(any));
  EXPECT_EQ(count_tcam_entries(mgr_, kBddTrue), 1u);
}

TEST_F(TcamRulesTest, PrefixIsOneEntry) {
  const BddRef p = b_.cidr(Field::kSrcIp, "10.1.1.0/24");
  const auto entries = enumerate_tcam_entries(mgr_, p);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].wildcard_bits(), kHeaderBits - 24);
  PacketHeader in, out;
  in.src_ip = parse_ipv4("10.1.1.200");
  out.src_ip = parse_ipv4("10.1.2.200");
  EXPECT_TRUE(entries[0].matches(in));
  EXPECT_FALSE(entries[0].matches(out));
}

TEST_F(TcamRulesTest, RangeExpandsToItsPrefixCount) {
  // [80, 443] decomposes into a known set of aligned blocks.
  const BddRef p = b_.range(Field::kDstPort, 80, 443);
  const auto entries = enumerate_tcam_entries(mgr_, p);
  EXPECT_EQ(entries.size(), count_tcam_entries(mgr_, p));
  EXPECT_GT(entries.size(), 1u);
  // Every port in range matches exactly one entry; out of range: none.
  for (const std::uint32_t port : {80u, 81u, 255u, 256u, 400u, 443u}) {
    PacketHeader h;
    h.dst_port = static_cast<std::uint16_t>(port);
    int hits = 0;
    for (const auto& entry : entries) hits += entry.matches(h);
    EXPECT_EQ(hits, 1) << "port " << port;
  }
  for (const std::uint32_t port : {79u, 444u, 0u, 65535u}) {
    PacketHeader h;
    h.dst_port = static_cast<std::uint16_t>(port);
    for (const auto& entry : entries) EXPECT_FALSE(entry.matches(h));
  }
}

TEST_F(TcamRulesTest, EntriesAreDisjointAndExactlyCoverPredicate) {
  const BddRef p = mgr_.apply_or(
      mgr_.apply_and(b_.cidr(Field::kSrcIp, "10.0.0.0/8"),
                     b_.exact(Field::kProto, 6)),
      b_.cidr(Field::kDstIp, "192.168.0.0/16"));
  const auto entries = enumerate_tcam_entries(mgr_, p);
  ASSERT_FALSE(entries.empty());

  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint32_t> word(0, 0xffffffffu);
  for (int trial = 0; trial < 2000; ++trial) {
    PacketHeader h;
    h.src_ip = word(rng);
    h.dst_ip = word(rng);
    h.src_port = static_cast<std::uint16_t>(word(rng));
    h.dst_port = static_cast<std::uint16_t>(word(rng));
    h.proto = static_cast<std::uint8_t>(word(rng));
    int hits = 0;
    for (const auto& entry : entries) hits += entry.matches(h);
    // Disjoint: at most one entry matches; exact: matches iff in predicate.
    EXPECT_LE(hits, 1);
    EXPECT_EQ(hits == 1, b_.matches(p, h));
  }
}

TEST_F(TcamRulesTest, ExpansionLimitThrows) {
  // Parity over 16 bits has exponentially many paths.
  BddRef parity = kBddFalse;
  for (std::uint32_t v = 0; v < 16; ++v) {
    parity = mgr_.apply_xor(parity, mgr_.var(v));
  }
  EXPECT_THROW(enumerate_tcam_entries(mgr_, parity, /*max_entries=*/64),
               std::length_error);
  // The counter saturates instead of throwing.
  EXPECT_GE(count_tcam_entries(mgr_, parity, 1000), 1000u);
}

TEST_F(TcamRulesTest, CountMatchesEnumerationOnRandomPredicates) {
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<std::uint32_t> word(0, 0xffffffffu);
  std::uniform_int_distribution<std::uint32_t> len(4, 20);
  for (int trial = 0; trial < 10; ++trial) {
    BddRef p = kBddFalse;
    for (int k = 0; k < 4; ++k) {
      p = mgr_.apply_or(p, b_.prefix(Field::kSrcIp, word(rng), len(rng)));
    }
    EXPECT_EQ(enumerate_tcam_entries(mgr_, p).size(),
              count_tcam_entries(mgr_, p));
  }
}

}  // namespace
}  // namespace apple::hsa
