#include "hsa/bdd.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>

#include "common/check.h"

namespace apple::hsa {
namespace {

TEST(Bdd, TerminalsAreFixed) {
  BddManager mgr(4);
  EXPECT_TRUE(mgr.is_false(kBddFalse));
  EXPECT_TRUE(mgr.is_true(kBddTrue));
  EXPECT_EQ(mgr.num_nodes(), 0u);
}

TEST(Bdd, VarAndNvarAreComplements) {
  BddManager mgr(4);
  const BddRef x = mgr.var(1);
  const BddRef nx = mgr.nvar(1);
  EXPECT_EQ(mgr.negate(x), nx);
  EXPECT_EQ(mgr.negate(nx), x);
  EXPECT_TRUE(mgr.is_false(mgr.apply_and(x, nx)));
  EXPECT_TRUE(mgr.is_true(mgr.apply_or(x, nx)));
}

TEST(Bdd, HashConsingGivesStructuralIdentity) {
  BddManager mgr(4);
  const BddRef a = mgr.apply_and(mgr.var(0), mgr.var(1));
  const BddRef b = mgr.apply_and(mgr.var(1), mgr.var(0));
  EXPECT_EQ(a, b);  // commutativity via canonical form
}

TEST(Bdd, VarOutOfRangeThrows) {
  BddManager mgr(4);
  EXPECT_THROW(mgr.var(4), std::out_of_range);
  EXPECT_THROW(mgr.nvar(9), std::out_of_range);
}

TEST(Bdd, BasicIdentities) {
  BddManager mgr(4);
  const BddRef x = mgr.var(0);
  EXPECT_EQ(mgr.apply_and(x, kBddTrue), x);
  EXPECT_EQ(mgr.apply_and(x, kBddFalse), kBddFalse);
  EXPECT_EQ(mgr.apply_or(x, kBddFalse), x);
  EXPECT_EQ(mgr.apply_or(x, kBddTrue), kBddTrue);
  EXPECT_EQ(mgr.apply_xor(x, x), kBddFalse);
  EXPECT_EQ(mgr.apply_xor(x, kBddFalse), x);
}

TEST(Bdd, DeMorgan) {
  BddManager mgr(4);
  const BddRef x = mgr.var(0);
  const BddRef y = mgr.var(2);
  EXPECT_EQ(mgr.negate(mgr.apply_and(x, y)),
            mgr.apply_or(mgr.negate(x), mgr.negate(y)));
}

TEST(Bdd, ImpliesAndDisjoint) {
  BddManager mgr(4);
  const BddRef x = mgr.var(0);
  const BddRef y = mgr.var(1);
  const BddRef xy = mgr.apply_and(x, y);
  EXPECT_TRUE(mgr.implies(xy, x));
  EXPECT_FALSE(mgr.implies(x, xy));
  EXPECT_TRUE(mgr.disjoint(x, mgr.negate(x)));
  EXPECT_FALSE(mgr.disjoint(x, y));
}

TEST(Bdd, PortableExportImportRoundTrips) {
  BddManager a(6);
  const BddRef f = a.apply_or(a.apply_and(a.var(0), a.nvar(3)),
                              a.apply_and(a.var(2), a.var(5)));
  // Same-manager round trip hash-conses back to the identical ref.
  EXPECT_EQ(a.import_bdd(a.export_bdd(f)), f);
  // Cross-manager transfer preserves semantics: same sat count, and the
  // re-exported DAG re-imports into the origin as the original ref.
  BddManager b(6);
  const BddRef g = b.import_bdd(a.export_bdd(f));
  EXPECT_DOUBLE_EQ(b.sat_count(g), a.sat_count(f));
  EXPECT_EQ(a.import_bdd(b.export_bdd(g)), f);
  // Terminals survive without nodes.
  const auto t = a.export_bdd(kBddTrue);
  EXPECT_TRUE(t.nodes.empty());
  EXPECT_EQ(b.import_bdd(t), kBddTrue);
}

TEST(Bdd, ImportRejectsVarCountMismatch) {
  // APPLE_CHECK fires on the mismatch; rethrow it so the case is testable
  // without a death-test fork.
  const auto previous = common::set_check_failure_handler(
      [](const std::string& message) { throw std::runtime_error(message); });
  BddManager a(6);
  BddManager b(4);
  const auto p = a.export_bdd(a.var(1));
  EXPECT_THROW(b.import_bdd(p), std::runtime_error);
  common::set_check_failure_handler(previous);
}

TEST(Bdd, SatCount) {
  BddManager mgr(4);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kBddTrue), 16.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kBddFalse), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0)), 8.0);
  const BddRef xy = mgr.apply_and(mgr.var(0), mgr.var(3));
  EXPECT_DOUBLE_EQ(mgr.sat_count(xy), 4.0);
  const BddRef x_or_y = mgr.apply_or(mgr.var(0), mgr.var(1));
  EXPECT_DOUBLE_EQ(mgr.sat_count(x_or_y), 12.0);
}

TEST(Bdd, Evaluate) {
  BddManager mgr(3);
  const BddRef f =
      mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(2));
  EXPECT_TRUE(mgr.evaluate(f, {true, true, false}));
  EXPECT_TRUE(mgr.evaluate(f, {false, false, true}));
  EXPECT_FALSE(mgr.evaluate(f, {true, false, false}));
  EXPECT_THROW(mgr.evaluate(f, {true}), std::invalid_argument);
}

TEST(Bdd, XorTruthTable) {
  BddManager mgr(2);
  const BddRef f = mgr.apply_xor(mgr.var(0), mgr.var(1));
  EXPECT_FALSE(mgr.evaluate(f, {false, false}));
  EXPECT_TRUE(mgr.evaluate(f, {false, true}));
  EXPECT_TRUE(mgr.evaluate(f, {true, false}));
  EXPECT_FALSE(mgr.evaluate(f, {true, true}));
}

// Property: random expressions evaluated via the BDD agree with direct
// evaluation of the same random assignment.
class BddRandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomEquivalence, MatchesDirectEvaluation) {
  const int kVars = 8;
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> pick_var(0, kVars - 1);
  std::uniform_int_distribution<int> pick_op(0, 2);
  BddManager mgr(kVars);

  // Random formula: fold literals with random ops; mirror as a lambda tree.
  struct Term {
    int var;
    bool neg;
    int op;  // op joining with the accumulator (0=and, 1=or, 2=xor)
  };
  std::vector<Term> terms;
  std::bernoulli_distribution flip(0.5);
  for (int i = 0; i < 12; ++i) {
    terms.push_back(Term{pick_var(rng), flip(rng), pick_op(rng)});
  }
  BddRef f = mgr.var(terms[0].var);
  if (terms[0].neg) f = mgr.negate(f);
  for (std::size_t i = 1; i < terms.size(); ++i) {
    BddRef lit = mgr.var(terms[i].var);
    if (terms[i].neg) lit = mgr.negate(lit);
    switch (terms[i].op) {
      case 0:
        f = mgr.apply_and(f, lit);
        break;
      case 1:
        f = mgr.apply_or(f, lit);
        break;
      default:
        f = mgr.apply_xor(f, lit);
        break;
    }
  }

  for (int trial = 0; trial < 64; ++trial) {
    std::vector<bool> bits(kVars);
    for (int v = 0; v < kVars; ++v) bits[v] = flip(rng);
    bool expected = bits[terms[0].var] != terms[0].neg;
    for (std::size_t i = 1; i < terms.size(); ++i) {
      const bool lit = bits[terms[i].var] != terms[i].neg;
      switch (terms[i].op) {
        case 0:
          expected = expected && lit;
          break;
        case 1:
          expected = expected || lit;
          break;
        default:
          expected = expected != lit;
          break;
      }
    }
    EXPECT_EQ(mgr.evaluate(f, bits), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomEquivalence, ::testing::Range(1, 9));

}  // namespace
}  // namespace apple::hsa
