#include "core/apple_controller.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace apple::core {
namespace {

ControllerConfig small_config() {
  ControllerConfig cfg;
  cfg.engine.strategy = PlacementStrategy::kGreedy;
  cfg.snapshot_duration = 0.5;
  cfg.tick = 0.05;
  cfg.poll_interval = 0.1;
  return cfg;
}

TEST(AppleController, OptimizeProducesConsistentEpoch) {
  const net::Topology topo = net::make_internet2();
  const AppleController controller(topo, vnf::default_policy_chains(),
                                   small_config());
  const traffic::TrafficMatrix tm =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 10000.0});
  const Epoch epoch = controller.optimize(tm);

  EXPECT_EQ(epoch.classes.size(), 132u);  // 12*11 OD pairs
  EXPECT_TRUE(epoch.plan.feasible);
  EXPECT_GT(epoch.plan.total_instances(), 0u);
  EXPECT_EQ(epoch.subclasses.size(), epoch.classes.size());
  EXPECT_GT(epoch.rules.tcam_with_tagging, 0u);

  PlacementInput input;
  input.topology = &topo;
  input.classes = epoch.classes;
  input.chains = controller.chains();
  EXPECT_EQ(check_plan(input, epoch.plan), "");
}

TEST(AppleController, RequiresChains) {
  const net::Topology topo = net::make_line(3);
  EXPECT_THROW(AppleController(topo, {}, small_config()),
               std::invalid_argument);
}

TEST(AppleController, ReplayOnSteadyTrafficIsLossless) {
  const net::Topology topo = net::make_internet2();
  const AppleController controller(topo, vnf::default_policy_chains(),
                                   small_config());
  const traffic::TrafficMatrix tm =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 8000.0});
  const Epoch epoch = controller.optimize(tm);
  // Replaying the exact optimization input: capacity matches demand.
  const std::vector<traffic::TrafficMatrix> series(4, tm);
  const ReplayReport report = controller.replay(epoch, series, true);
  ASSERT_EQ(report.snapshot_loss.size(), 4u);
  EXPECT_NEAR(report.mean_loss, 0.0, 1e-9);
  EXPECT_EQ(report.failover.overload_events, 0u);
}

TEST(AppleController, FastFailoverReducesBurstLoss) {
  const net::Topology topo = net::make_internet2();
  ControllerConfig cfg = small_config();
  cfg.snapshot_duration = 1.0;
  const AppleController controller(topo, vnf::default_policy_chains(), cfg);
  const traffic::TrafficMatrix base =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 10000.0});
  const Epoch epoch = controller.optimize(base);

  // Burst series: several snapshots with one OD pair amplified 8x.
  std::vector<traffic::TrafficMatrix> series(6, base);
  for (std::size_t t = 1; t < 5; ++t) {
    series[t].set(0, 5, base.at(0, 5) * 8.0);
    series[t].set(3, 7, base.at(3, 7) * 8.0);
  }
  const ReplayReport without = controller.replay(epoch, series, false);
  const ReplayReport with = controller.replay(epoch, series, true);
  EXPECT_GT(without.mean_loss, 0.0);  // burst overloads something
  EXPECT_LT(with.mean_loss, without.mean_loss);
  EXPECT_GT(with.failover.overload_events, 0u);
}

TEST(AppleController, ReplayEmptySeries) {
  const net::Topology topo = net::make_line(3);
  const AppleController controller(topo, vnf::default_policy_chains(),
                                   small_config());
  traffic::TrafficMatrix tm(3);
  tm.set(0, 2, 100.0);
  const Epoch epoch = controller.optimize(tm);
  const ReplayReport report = controller.replay(epoch, {}, true);
  EXPECT_TRUE(report.snapshot_loss.empty());
  EXPECT_DOUBLE_EQ(report.mean_loss, 0.0);
}

TEST(AppleController, ReplayAccountsIncrementalChurn) {
  const net::Topology topo = net::make_internet2();
  ControllerConfig cfg = small_config();
  cfg.reoptimize_every = 2;
  const AppleController controller(topo, vnf::default_policy_chains(), cfg);
  const traffic::TrafficMatrix base =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 8000.0});
  const Epoch epoch = controller.optimize(base);

  // Demand grows 40% per segment: each re-optimization must launch extra
  // instances but may keep everything already placed.
  std::vector<traffic::TrafficMatrix> series(6, base);
  for (std::size_t t = 0; t < series.size(); ++t) {
    const double scale = 1.0 + 0.4 * static_cast<double>(t / 2);
    for (net::NodeId i = 0; i < topo.num_nodes(); ++i) {
      for (net::NodeId j = 0; j < topo.num_nodes(); ++j) {
        series[t].set(i, j, base.at(i, j) * scale);
      }
    }
  }
  const ReplayReport report = controller.replay(epoch, series, false);
  EXPECT_EQ(report.epochs, 3u);
  EXPECT_EQ(report.churn.reoptimizations, 2u);
  EXPECT_EQ(report.churn.full_recomputes, 0u);
  EXPECT_GT(report.churn.instances_launched, 0u);
  EXPECT_EQ(report.churn.instances_retired, 0u);  // demand only grows
  EXPECT_GT(report.churn.rules_installed, 0u);
  EXPECT_GT(report.churn.control_latency_max_s, 0.0);
  EXPECT_GE(report.churn.control_latency_sum_s,
            report.churn.control_latency_max_s);
}

TEST(AppleController, IncrementalChurnsLessThanFullReinstall) {
  const net::Topology topo = net::make_internet2();
  ControllerConfig cfg = small_config();
  cfg.reoptimize_every = 2;
  const AppleController incremental(topo, vnf::default_policy_chains(), cfg);
  cfg.incremental_reoptimize = false;
  const AppleController full(topo, vnf::default_policy_chains(), cfg);

  const traffic::TrafficMatrix base =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 8000.0});
  const Epoch epoch = incremental.optimize(base);
  std::vector<traffic::TrafficMatrix> series(6, base);
  for (std::size_t t = 2; t < series.size(); ++t) {
    series[t].set(0, 5, base.at(0, 5) * 1.5);
  }
  const ReplayReport inc = incremental.replay(epoch, series, false);
  const ReplayReport re = full.replay(epoch, series, false);

  // A small perturbation churns a handful of instances incrementally but
  // the whole fleet (twice) under full reinstall.
  const std::uint64_t inc_churn = inc.churn.instances_launched +
                                  inc.churn.instances_retired +
                                  inc.churn.instances_reconfigured;
  const std::uint64_t full_churn = re.churn.instances_launched +
                                   re.churn.instances_retired +
                                   re.churn.instances_reconfigured;
  EXPECT_LT(inc_churn, full_churn);
  EXPECT_LT(inc.churn.rules_installed, re.churn.rules_installed);
  EXPECT_EQ(re.churn.full_recomputes, 2u);
  EXPECT_EQ(inc.churn.full_recomputes, 0u);
}

TEST(AppleController, ChainAssignmentIsDeterministic) {
  const net::Topology topo = net::make_line(4);
  const AppleController a(topo, vnf::default_policy_chains(), small_config());
  const AppleController b(topo, vnf::default_policy_chains(), small_config());
  traffic::TrafficMatrix tm(4);
  tm.set(0, 3, 100.0);
  tm.set(1, 3, 50.0);
  const auto ca = a.build_classes(tm);
  const auto cb = b.build_classes(tm);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].chain_id, cb[i].chain_id);
    EXPECT_EQ(ca[i].path, cb[i].path);
  }
}

}  // namespace
}  // namespace apple::core
