#include "core/placement.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace apple::core {
namespace {

using vnf::NfType;

// Shared tiny scenario: 3-switch line, one class 0->2 with chain FW->IDS.
struct Scenario {
  net::Topology topo = net::make_line(3, 64.0);
  std::vector<vnf::PolicyChain> chains{{NfType::kFirewall, NfType::kIds}};
  std::vector<traffic::TrafficClass> classes;
  PlacementInput input;

  Scenario() {
    traffic::TrafficClass cls;
    cls.id = 0;
    cls.src = 0;
    cls.dst = 2;
    cls.path = {0, 1, 2};
    cls.chain_id = 0;
    cls.rate_mbps = 500.0;
    classes.push_back(cls);
    input.topology = &topo;
    input.classes = classes;
    input.chains = chains;
  }

  PlacementPlan valid_plan() const {
    PlacementPlan plan;
    plan.instance_count.assign(3, {});
    plan.instance_count[1][static_cast<std::size_t>(NfType::kFirewall)] = 1;
    plan.instance_count[2][static_cast<std::size_t>(NfType::kIds)] = 1;
    plan.distribution.resize(1);
    plan.distribution[0].fraction.assign(3, std::vector<double>(2, 0.0));
    plan.distribution[0].fraction[1][0] = 1.0;  // FW at switch 1
    plan.distribution[0].fraction[2][1] = 1.0;  // IDS at switch 2
    plan.feasible = true;
    return plan;
  }
};

TEST(PlacementInput, ValidatesReferences) {
  Scenario s;
  EXPECT_NO_THROW(s.input.validate());
  s.classes[0].chain_id = 9;
  PlacementInput bad = s.input;
  bad.classes = s.classes;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(PlacementInput, RejectsEmptyPathAndBadSwitch) {
  Scenario s;
  s.classes[0].path.clear();
  s.input.classes = s.classes;
  EXPECT_THROW(s.input.validate(), std::invalid_argument);
  s.classes[0].path = {0, 99};
  s.input.classes = s.classes;
  EXPECT_THROW(s.input.validate(), std::invalid_argument);
}

TEST(PlacementPlan, ObjectiveAndCores) {
  Scenario s;
  const PlacementPlan plan = s.valid_plan();
  EXPECT_EQ(plan.total_instances(), 2u);
  // FW (4 cores) + IDS (8 cores).
  EXPECT_DOUBLE_EQ(plan.total_cores(), 12.0);
  EXPECT_EQ(plan.instances_of(1, NfType::kFirewall), 1u);
  EXPECT_EQ(plan.instances_of(1, NfType::kIds), 0u);
}

TEST(CheckPlan, AcceptsValidPlan) {
  Scenario s;
  EXPECT_EQ(check_plan(s.input, s.valid_plan()), "");
}

TEST(CheckPlan, CatchesIncompleteProcessing) {
  Scenario s;
  PlacementPlan plan = s.valid_plan();
  // Last stage only 70% processed (keeps Eq. 3 prefixes intact so the
  // completion check is the one that fires).
  plan.distribution[0].fraction[2][1] = 0.7;
  const std::string err = check_plan(s.input, plan);
  EXPECT_NE(err.find("Eq. 4"), std::string::npos) << err;
}

TEST(CheckPlan, CatchesOrderViolation) {
  Scenario s;
  PlacementPlan plan = s.valid_plan();
  // IDS (stage 2) at switch 1 but FW (stage 1) only at switch 2: reversed.
  plan.distribution[0].fraction[1][0] = 0.0;
  plan.distribution[0].fraction[1][1] = 1.0;
  plan.distribution[0].fraction[2][0] = 1.0;
  plan.distribution[0].fraction[2][1] = 0.0;
  plan.instance_count[1][static_cast<std::size_t>(NfType::kIds)] = 1;
  plan.instance_count[1][static_cast<std::size_t>(NfType::kFirewall)] = 0;
  plan.instance_count[2][static_cast<std::size_t>(NfType::kFirewall)] = 1;
  plan.instance_count[2][static_cast<std::size_t>(NfType::kIds)] = 0;
  const std::string err = check_plan(s.input, plan);
  EXPECT_NE(err.find("Eq. 3"), std::string::npos) << err;
}

TEST(CheckPlan, CatchesCapacityViolation) {
  Scenario s;
  s.classes[0].rate_mbps = 2000.0;  // one 900-Mbps FW cannot absorb this
  s.input.classes = s.classes;
  const std::string err = check_plan(s.input, s.valid_plan());
  EXPECT_NE(err.find("Eq. 5"), std::string::npos) << err;
}

TEST(CheckPlan, CatchesResourceViolation) {
  Scenario s;
  PlacementPlan plan = s.valid_plan();
  // 64 cores / 8 per IDS = 8 instances max.
  plan.instance_count[2][static_cast<std::size_t>(NfType::kIds)] = 9;
  const std::string err = check_plan(s.input, plan);
  EXPECT_NE(err.find("Eq. 6"), std::string::npos) << err;
}

TEST(CheckPlan, CatchesOutOfRangeFraction) {
  Scenario s;
  PlacementPlan plan = s.valid_plan();
  plan.distribution[0].fraction[1][0] = 1.4;
  plan.distribution[0].fraction[2][0] = -0.4;
  const std::string err = check_plan(s.input, plan);
  EXPECT_NE(err.find("Eq. 8"), std::string::npos) << err;
}

TEST(CheckPlan, CatchesShapeMismatch) {
  Scenario s;
  PlacementPlan plan = s.valid_plan();
  plan.distribution[0].fraction.pop_back();
  EXPECT_NE(check_plan(s.input, plan), "");
  PlacementPlan plan2 = s.valid_plan();
  plan2.instance_count.pop_back();
  EXPECT_NE(check_plan(s.input, plan2), "");
}

}  // namespace
}  // namespace apple::core
