#include "core/epoch_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <utility>

#include "dataplane/data_plane.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "traffic/synthesis.h"

namespace apple::core {
namespace {

using vnf::NfType;

PipelineOptions options_for(PlacementStrategy strategy,
                            double threshold = 0.05) {
  PipelineOptions options;
  options.engine.strategy = strategy;
  options.delta.rate_change_threshold = threshold;
  return options;
}

PlacementInput make_input(const net::Topology& topo,
                          const std::vector<traffic::TrafficClass>& classes,
                          const std::vector<vnf::PolicyChain>& chains) {
  PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;
  return input;
}

// Line 0-1-2 with the APPLE host only at the middle switch, so instance
// locations (and hence churn counts) are fully determined.
net::Topology middle_host_line() {
  net::Topology topo = net::make_line(3, 64.0);
  topo.node(0).host_cores = 0.0;
  topo.node(2).host_cores = 0.0;
  return topo;
}

// Structural equality of two data planes: same classes with the same
// sub-class plans, same registered instances.
void expect_same_dataplane(const dataplane::DataPlane& a,
                           const dataplane::DataPlane& b,
                           const InstanceInventory& inventory) {
  ASSERT_EQ(a.class_ids(), b.class_ids());
  for (const traffic::ClassId id : a.class_ids()) {
    const auto& pa = a.plans_of(id);
    const auto& pb = b.plans_of(id);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
      EXPECT_EQ(pa[s].subclass_id, pb[s].subclass_id);
      EXPECT_NEAR(pa[s].weight, pb[s].weight, 1e-9);
      ASSERT_EQ(pa[s].itinerary.size(), pb[s].itinerary.size());
      for (std::size_t i = 0; i < pa[s].itinerary.size(); ++i) {
        EXPECT_EQ(pa[s].itinerary[i].at_switch, pb[s].itinerary[i].at_switch);
        EXPECT_EQ(pa[s].itinerary[i].instances, pb[s].itinerary[i].instances);
      }
    }
    EXPECT_EQ(a.path_of(id), b.path_of(id));
  }
  EXPECT_EQ(a.num_instances(), b.num_instances());
  for (const auto& per_type : inventory.by_node_type) {
    for (const auto& bucket : per_type) {
      for (const vnf::InstanceId id : bucket) {
        EXPECT_TRUE(a.has_instance(id));
        EXPECT_TRUE(b.has_instance(id));
      }
    }
  }
}

// Installs an epoch into a data plane from scratch (the non-incremental
// reference the delta-patched state must match).
void install_epoch(const Epoch& epoch, dataplane::DataPlane& dp) {
  for (net::NodeId v = 0; v < epoch.inventory.by_node_type.size(); ++v) {
    for (std::size_t n = 0; n < vnf::kNumNfTypes; ++n) {
      for (const vnf::InstanceId id : epoch.inventory.by_node_type[v][n]) {
        dp.register_instance(vnf::VnfInstance{
            id, static_cast<NfType>(n), v,
            vnf::spec_of(static_cast<NfType>(n)).capacity_mbps});
      }
    }
  }
  for (std::size_t h = 0; h < epoch.classes.size(); ++h) {
    dp.install_class(epoch.classes[h], epoch.subclasses[h]);
  }
}

TEST(DiffClasses, ClassifiesAddedRemovedChangedPinned) {
  std::vector<traffic::TrafficClass> prev(3);
  prev[0] = {0, 0, 2, {0, 1, 2}, 0, 100.0};   // survives, small drift
  prev[1] = {1, 1, 2, {1, 2}, 0, 200.0};      // survives, large drift
  prev[2] = {2, 0, 1, {0, 1}, 1, 50.0};       // removed
  std::vector<traffic::TrafficClass> next(3);
  next[0] = {0, 0, 2, {0, 1, 2}, 0, 102.0};   // 2% drift -> pinned
  next[1] = {1, 1, 2, {1, 2}, 0, 300.0};      // 50% drift -> dirty
  next[2] = {9, 2, 0, {2, 1, 0}, 1, 75.0};    // new identity -> added

  const ClassDelta delta = diff_classes(prev, next, {.rate_change_threshold = 0.05});
  EXPECT_EQ(delta.unchanged, (std::vector<std::size_t>{0}));
  EXPECT_EQ(delta.rate_changed, (std::vector<std::size_t>{1}));
  EXPECT_EQ(delta.added, (std::vector<std::size_t>{2}));
  EXPECT_EQ(delta.removed, (std::vector<std::size_t>{2}));
  EXPECT_EQ(delta.prev_of,
            (std::vector<std::size_t>{0, 1, kNoClass}));
  EXPECT_EQ(delta.dirty_count(), 2u);
  EXPECT_FALSE(delta.empty());
}

TEST(DiffClasses, ReroutedClassIsRemovePlusAdd) {
  std::vector<traffic::TrafficClass> prev(1);
  prev[0] = {0, 0, 2, {0, 1, 2}, 0, 100.0};
  std::vector<traffic::TrafficClass> next(1);
  next[0] = {0, 0, 2, {0, 2}, 0, 100.0};  // same identity, new path

  const ClassDelta delta = diff_classes(prev, next);
  EXPECT_EQ(delta.added, (std::vector<std::size_t>{0}));
  EXPECT_EQ(delta.removed, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(delta.unchanged.empty());
}

TEST(DiffClasses, ThresholdZeroMarksAnyDriftDirty) {
  std::vector<traffic::TrafficClass> prev(1);
  prev[0] = {0, 0, 2, {0, 1, 2}, 0, 100.0};
  std::vector<traffic::TrafficClass> next(1);
  next[0] = {0, 0, 2, {0, 1, 2}, 0, 100.0001};

  EXPECT_EQ(diff_classes(prev, next, {.rate_change_threshold = 0.0})
                .rate_changed.size(),
            1u);
  EXPECT_EQ(diff_classes(prev, next).unchanged.size(), 1u);
}

// Store-based diff scenario: Internet2 gravity traffic in an 8-shard store,
// with the perturbation confined to the OD pairs of shard 0.
struct StoreScenario {
  net::Topology topo = net::make_internet2(64.0);
  net::AllPairsPaths routing{topo};
  traffic::TrafficMatrix base =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 4000.0});
  traffic::ChainAssignment assign = traffic::uniform_chain_assignment(2, 3);
  traffic::StoreBuildOptions opt{.num_shards = 8};

  traffic::ClassStore build(const traffic::TrafficMatrix& tm) const {
    return traffic::build_class_store(topo, routing, tm, assign, opt);
  }
  traffic::TrafficMatrix perturbed_shard0() const {
    traffic::TrafficMatrix moved = base;
    for (net::NodeId s = 0; s < topo.num_nodes(); ++s) {
      for (net::NodeId d = 0; d < topo.num_nodes(); ++d) {
        if (s != d && traffic::ClassStore::shard_of(s, d, 8) == 0) {
          moved.set(s, d, base.at(s, d) * 1.5);
        }
      }
    }
    return moved;
  }
};

TEST(DiffClassesStore, MatchesFlatDiffBucketForBucket) {
  const StoreScenario sc;
  const traffic::ClassStore prev = sc.build(sc.base);
  const traffic::ClassStore next = sc.build(sc.perturbed_shard0());

  const ClassDelta sharded = diff_classes(prev, next);
  const ClassDelta flat =
      diff_classes(prev.materialize_view(), next.materialize_view());
  EXPECT_EQ(sharded.added, flat.added);
  EXPECT_EQ(sharded.removed, flat.removed);
  EXPECT_EQ(sharded.rate_changed, flat.rate_changed);
  EXPECT_EQ(sharded.unchanged, flat.unchanged);
  EXPECT_EQ(sharded.prev_of, flat.prev_of);
  // The flat path never touches shard accounting; the store path diffs only
  // the one shard whose traffic moved.
  EXPECT_EQ(flat.shards_dirty + flat.shards_clean, 0u);
  EXPECT_EQ(sharded.shards_dirty, 1u);
  EXPECT_EQ(sharded.shards_clean, 7u);
  EXPECT_FALSE(sharded.rate_changed.empty());
}

TEST(DiffClassesStore, IdenticalStoresAreAllCleanShards) {
  const StoreScenario sc;
  const traffic::ClassStore prev = sc.build(sc.base);
  const traffic::ClassStore next = sc.build(sc.base);
  const ClassDelta delta = diff_classes(prev, next);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.shards_clean, 8u);
  EXPECT_EQ(delta.shards_dirty, 0u);
  EXPECT_EQ(delta.unchanged.size(), prev.size());
}

TEST(EpochPipeline, StoreRunMatchesFlatRun) {
  const StoreScenario sc;
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat, NfType::kIds}};
  traffic::ClassStore store = sc.build(sc.base);
  const EpochPipeline pipeline(options_for(PlacementStrategy::kGreedy));
  const Epoch flat =
      pipeline.run(sc.topo, chains, store.materialize_view());
  const Epoch stored = pipeline.run(sc.topo, chains, std::move(store));
  // The store-based epoch keeps the sharded representation and its classes
  // are the materialized view, so both paths see identical inputs.
  EXPECT_EQ(stored.store.size(), stored.classes.size());
  EXPECT_EQ(flat.store.size(), 0u);
  ASSERT_EQ(stored.classes.size(), flat.classes.size());
  for (std::size_t i = 0; i < flat.classes.size(); ++i) {
    EXPECT_EQ(stored.classes[i].id, flat.classes[i].id);
    EXPECT_EQ(stored.classes[i].path, flat.classes[i].path);
  }
  EXPECT_EQ(stored.plan.instance_count, flat.plan.instance_count);
  EXPECT_EQ(stored.inventory.by_node_type, flat.inventory.by_node_type);
  EXPECT_EQ(stored.rules.tcam_with_tagging, flat.rules.tcam_with_tagging);
  EXPECT_EQ(stored.rules.vswitch_rules, flat.rules.vswitch_rules);
}

TEST(EpochPipeline, StoreAdvanceCarriesIdsAndSkipsCleanShards) {
  const StoreScenario sc;
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat, NfType::kIds}};
  const EpochPipeline pipeline(options_for(PlacementStrategy::kGreedy));
  const Epoch prev = pipeline.run(sc.topo, chains, sc.build(sc.base));
  const IncrementalEpoch inc =
      pipeline.advance(prev, sc.topo, chains, sc.build(sc.perturbed_shard0()));

  EXPECT_EQ(inc.class_delta.shards_dirty, 1u);
  EXPECT_EQ(inc.class_delta.shards_clean, 7u);
  EXPECT_TRUE(inc.class_delta.added.empty());
  EXPECT_TRUE(inc.class_delta.removed.empty());
  EXPECT_FALSE(inc.class_delta.rate_changed.empty());
  // Every class survives, so every class keeps its previous epoch's id —
  // in the store and in the materialized view alike.
  ASSERT_EQ(inc.epoch.classes.size(), prev.classes.size());
  for (std::size_t i = 0; i < prev.classes.size(); ++i) {
    EXPECT_EQ(inc.epoch.classes[i].id, prev.classes[i].id);
  }
  EXPECT_EQ(inc.epoch.store.size(), inc.epoch.classes.size());
  EXPECT_EQ(inc.epoch.next_class_id, prev.next_class_id);
  // The store advance must agree with the flat advance over the same data.
  const IncrementalEpoch flat = pipeline.advance(
      prev, sc.topo, chains, sc.build(sc.perturbed_shard0()).materialize_view());
  EXPECT_EQ(inc.class_delta.rate_changed, flat.class_delta.rate_changed);
  EXPECT_EQ(inc.epoch.plan.instance_count, flat.epoch.plan.instance_count);
  EXPECT_EQ(inc.epoch.inventory.by_node_type, flat.epoch.inventory.by_node_type);
}

class PipelineStrategies
    : public ::testing::TestWithParam<PlacementStrategy> {};

TEST_P(PipelineStrategies, AdvanceOnIdenticalTrafficHasZeroChurn) {
  const net::Topology topo = middle_host_line();
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat}};
  std::vector<traffic::TrafficClass> classes(2);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 500.0};
  classes[1] = {1, 0, 2, {0, 1, 2}, 1, 300.0};

  const EpochPipeline pipeline(options_for(GetParam()));
  const Epoch prev = pipeline.run(topo, chains, classes);
  const IncrementalEpoch inc = pipeline.advance(prev, topo, chains, classes);

  EXPECT_TRUE(inc.class_delta.empty());
  EXPECT_TRUE(inc.plan_delta.empty());
  EXPECT_TRUE(inc.rule_delta.empty());
  EXPECT_FALSE(inc.full_recompute);
  EXPECT_DOUBLE_EQ(inc.control_latency_s, 0.0);
  EXPECT_EQ(inc.epoch.plan.instance_count, prev.plan.instance_count);
  EXPECT_EQ(inc.epoch.inventory.by_node_type, prev.inventory.by_node_type);
  EXPECT_EQ(inc.epoch.next_instance_id, prev.next_instance_id);
  EXPECT_EQ(inc.epoch.next_class_id, prev.next_class_id);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PipelineStrategies,
                         ::testing::Values(PlacementStrategy::kExact,
                                           PlacementStrategy::kLpRound,
                                           PlacementStrategy::kGreedy),
                         [](const auto& param_info) {
                           std::string name = to_string(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

// The churn-accounting scenario: one class triples its rate (one extra FW
// must launch), one class is removed and another added with the same NF
// demand (rules churn, instances do not).
TEST(EpochPipeline, ChurnAccountingIsExact) {
  const net::Topology topo = middle_host_line();
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat}};
  std::vector<traffic::TrafficClass> prev_classes(2);
  prev_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 500.0};  // 1 FW @ node 1
  prev_classes[1] = {1, 0, 2, {0, 1, 2}, 1, 300.0};  // 1 NAT @ node 1
  std::vector<traffic::TrafficClass> next_classes(2);
  next_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 1500.0};  // now needs 2 FW
  next_classes[1] = {7, 2, 0, {2, 1, 0}, 1, 400.0};   // new NAT user

  const EpochPipeline pipeline(options_for(PlacementStrategy::kGreedy));
  const Epoch prev = pipeline.run(topo, chains, prev_classes);
  ASSERT_EQ(prev.plan.total_instances(), 2u);
  ASSERT_EQ(prev.next_instance_id, 3u);

  const IncrementalEpoch inc =
      pipeline.advance(prev, topo, chains, next_classes);
  EXPECT_EQ(inc.class_delta.rate_changed, (std::vector<std::size_t>{0}));
  EXPECT_EQ(inc.class_delta.added, (std::vector<std::size_t>{1}));
  EXPECT_EQ(inc.class_delta.removed, (std::vector<std::size_t>{1}));

  // Exactly one launch (the second firewall), nothing retired: the NAT
  // slot freed by the removed class is reused by the added one.
  EXPECT_EQ(inc.plan_delta.instances_launched, 1u);
  EXPECT_EQ(inc.plan_delta.instances_retired, 0u);
  EXPECT_EQ(inc.plan_delta.instances_reconfigured, 0u);
  ASSERT_EQ(inc.plan_delta.ops.size(), 1u);
  EXPECT_EQ(inc.plan_delta.ops[0].kind, InstanceOp::Kind::kLaunch);
  EXPECT_EQ(inc.plan_delta.ops[0].id, prev.next_instance_id);
  EXPECT_EQ(inc.plan_delta.ops[0].node, 1u);
  EXPECT_EQ(inc.plan_delta.ops[0].type, NfType::kFirewall);

  // Rule churn: the grown class reinstalls, the new class installs, the
  // removed class's rules go away.
  EXPECT_EQ(inc.rule_delta.reinstall.size(), 2u);
  EXPECT_EQ(inc.rule_delta.remove.size(), 1u);
  EXPECT_EQ(inc.rule_delta.remove[0], prev.classes[1].id);
  EXPECT_GT(inc.rule_delta.rules_installed, 0u);
  EXPECT_GT(inc.rule_delta.rules_removed, 0u);

  // Surviving classes keep their ids; the added class gets a fresh one.
  EXPECT_EQ(inc.epoch.classes[0].id, prev.classes[0].id);
  EXPECT_EQ(inc.epoch.classes[1].id, prev.next_class_id);
  EXPECT_EQ(inc.epoch.next_instance_id, prev.next_instance_id + 1);

  // ClickOS launch makespan plus three per-class rule updates.
  const orch::OrchestrationTimings timings;
  EXPECT_NEAR(inc.control_latency_s,
              timings.clickos_boot_openstack_mean() + 3 * timings.rule_install,
              1e-9);
}

// A freed ClickOS instance is repurposed (~30 ms) instead of a retire plus
// a multi-second OpenStack launch.
TEST(EpochPipeline, PrefersReconfigureOverLaunch) {
  const net::Topology topo = middle_host_line();
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat}};
  std::vector<traffic::TrafficClass> prev_classes(2);
  prev_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 500.0};  // 1 FW
  prev_classes[1] = {1, 0, 2, {0, 1, 2}, 1, 300.0};  // 1 NAT
  std::vector<traffic::TrafficClass> next_classes(1);
  next_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 1300.0};  // 2 FW, NAT gone

  const EpochPipeline pipeline(options_for(PlacementStrategy::kGreedy));
  const Epoch prev = pipeline.run(topo, chains, prev_classes);
  const IncrementalEpoch inc =
      pipeline.advance(prev, topo, chains, next_classes);

  EXPECT_EQ(inc.plan_delta.instances_reconfigured, 1u);
  EXPECT_EQ(inc.plan_delta.instances_launched, 0u);
  EXPECT_EQ(inc.plan_delta.instances_retired, 0u);
  ASSERT_EQ(inc.plan_delta.ops.size(), 1u);
  const InstanceOp& op = inc.plan_delta.ops[0];
  EXPECT_EQ(op.kind, InstanceOp::Kind::kReconfigure);
  EXPECT_EQ(op.old_type, NfType::kNat);
  EXPECT_EQ(op.type, NfType::kFirewall);
  // Reconfigure keeps the NAT's id inside the FW bucket.
  const auto& fw_bucket = inc.epoch.inventory.at(1, NfType::kFirewall);
  EXPECT_NE(std::find(fw_bucket.begin(), fw_bucket.end(), op.id),
            fw_bucket.end());
  EXPECT_TRUE(inc.epoch.inventory.at(1, NfType::kNat).empty());
  // ~30 ms reconfigure + one rule reinstall + one rule removal.
  const orch::OrchestrationTimings timings;
  EXPECT_NEAR(inc.control_latency_s,
              timings.clickos_reconfigure + 2 * timings.rule_install, 1e-9);
}

TEST(EpochPipeline, ExactIncrementalMatchesFullObjective) {
  const net::Topology topo = net::make_star(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> prev_classes(2);
  prev_classes[0] = {0, 1, 2, {1, 0, 2}, 0, 450.0};
  prev_classes[1] = {1, 3, 4, {3, 0, 4}, 0, 450.0};
  std::vector<traffic::TrafficClass> next_classes = prev_classes;
  next_classes[0].rate_mbps = 500.0;
  next_classes[1].rate_mbps = 550.0;

  const EpochPipeline pipeline(options_for(PlacementStrategy::kExact));
  const Epoch prev = pipeline.run(topo, chains, prev_classes);
  ASSERT_EQ(prev.plan.total_instances(), 1u);  // pooled hub firewall

  const IncrementalEpoch inc =
      pipeline.advance(prev, topo, chains, next_classes);
  const Epoch full = pipeline.run(topo, chains, next_classes);

  // kExact re-proves optimality on the incremental path: same objective
  // and a valid plan, with the incumbent seeded from the previous epoch.
  EXPECT_EQ(inc.epoch.plan.total_instances(), full.plan.total_instances());
  EXPECT_EQ(inc.epoch.plan.total_instances(), 2u);
  const PlacementInput input =
      make_input(topo, inc.epoch.classes, chains);
  EXPECT_EQ(check_plan(input, inc.epoch.plan), "");
  EXPECT_FALSE(inc.full_recompute);
}

TEST(EpochPipeline, GreedyAndLpRoundIncrementalStayFeasible) {
  for (const PlacementStrategy strategy :
       {PlacementStrategy::kGreedy, PlacementStrategy::kLpRound}) {
    const net::Topology topo = net::make_grid(2, 3, 64.0);
    const net::AllPairsPaths routing(topo);
    const std::vector<vnf::PolicyChain> chains{
        {NfType::kFirewall}, {NfType::kFirewall, NfType::kNat}};
    std::vector<traffic::TrafficClass> prev_classes;
    const std::array<std::pair<net::NodeId, net::NodeId>, 4> pairs{
        {{0, 5}, {1, 4}, {2, 3}, {5, 0}}};
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      traffic::TrafficClass cls;
      cls.id = static_cast<traffic::ClassId>(k);
      cls.src = pairs[k].first;
      cls.dst = pairs[k].second;
      cls.path = *routing.path(cls.src, cls.dst);
      cls.chain_id = static_cast<traffic::ChainId>(k % chains.size());
      cls.rate_mbps = 300.0 + 100.0 * static_cast<double>(k);
      prev_classes.push_back(cls);
    }
    std::vector<traffic::TrafficClass> next_classes = prev_classes;
    next_classes[0].rate_mbps *= 1.8;   // dirty
    next_classes[1].rate_mbps *= 1.02;  // pinned
    next_classes.pop_back();            // removed

    const EpochPipeline pipeline(options_for(strategy));
    const Epoch prev = pipeline.run(topo, chains, prev_classes);
    const IncrementalEpoch inc =
        pipeline.advance(prev, topo, chains, next_classes);
    const Epoch full = pipeline.run(topo, chains, next_classes);

    const PlacementInput input =
        make_input(topo, inc.epoch.classes, chains);
    EXPECT_EQ(check_plan(input, inc.epoch.plan), "")
        << to_string(strategy);
    // No consolidation on the incremental path, so it may keep a little
    // more capacity around — but never pathologically more than a full
    // re-solve of the same snapshot.
    EXPECT_LE(inc.epoch.plan.total_instances(),
              2 * full.plan.total_instances() + 2)
        << to_string(strategy);
    // Pinned classes keep their distributions verbatim.
    EXPECT_EQ(inc.class_delta.rate_changed, (std::vector<std::size_t>{0}));
    EXPECT_EQ(inc.class_delta.unchanged, (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(inc.class_delta.removed, (std::vector<std::size_t>{3}));
    for (const std::size_t h : inc.class_delta.unchanged) {
      const std::size_t p = inc.class_delta.prev_of[h];
      EXPECT_EQ(inc.epoch.plan.distribution[h].fraction,
                prev.plan.distribution[p].fraction)
          << to_string(strategy);
    }
  }
}

TEST(EpochPipeline, AppliedRuleDeltaMatchesFreshInstall) {
  const net::Topology topo = middle_host_line();
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat}};
  std::vector<traffic::TrafficClass> prev_classes(2);
  prev_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 500.0};
  prev_classes[1] = {1, 0, 2, {0, 1, 2}, 1, 300.0};
  std::vector<traffic::TrafficClass> next_classes(2);
  next_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 1500.0};
  next_classes[1] = {7, 2, 0, {2, 1, 0}, 1, 400.0};

  const EpochPipeline pipeline(options_for(PlacementStrategy::kGreedy));
  const Epoch prev = pipeline.run(topo, chains, prev_classes);
  const IncrementalEpoch inc =
      pipeline.advance(prev, topo, chains, next_classes);

  dataplane::DataPlane fresh(topo);
  install_epoch(inc.epoch, fresh);

  dataplane::DataPlane patched(topo);
  install_epoch(prev, patched);
  const PlacementInput next_input =
      make_input(topo, inc.epoch.classes, chains);
  apply_rule_delta(next_input, inc.epoch.subclasses, inc.plan_delta,
                   inc.rule_delta, patched);

  expect_same_dataplane(fresh, patched, inc.epoch.inventory);
}

TEST(EpochPipeline, FallsBackToFullRecomputeWhenResidualFillFails) {
  // Host cores sized so the previous placement fits but the grown demand
  // cannot be packed incrementally around the pinned NAT (FW needs 4
  // cores; 2 FW + 1 NAT = 10 > 8): the full recompute must take over, and
  // here even it is infeasible, so advance throws.
  net::Topology topo = net::make_line(3, 8.0);
  topo.node(0).host_cores = 0.0;
  topo.node(2).host_cores = 0.0;
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat}};
  std::vector<traffic::TrafficClass> prev_classes(2);
  prev_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 500.0};
  prev_classes[1] = {1, 0, 2, {0, 1, 2}, 1, 300.0};
  std::vector<traffic::TrafficClass> next_classes = prev_classes;
  next_classes[0].rate_mbps = 1500.0;  // needs a second FW: no cores left

  const EpochPipeline pipeline(options_for(PlacementStrategy::kGreedy));
  const Epoch prev = pipeline.run(topo, chains, prev_classes);
  EXPECT_THROW(pipeline.advance(prev, topo, chains, next_classes),
               std::runtime_error);
}

TEST(DiffPlans, RetireAndLaunchForNonClickosTypes) {
  // Proxy -> IDS shift: neither is ClickOS, so no reconfigure pairing.
  PlacementPlan prev;
  prev.feasible = true;
  prev.instance_count.assign(1, {});
  prev.instance_count[0][static_cast<std::size_t>(NfType::kProxy)] = 1;
  PlacementPlan next = prev;
  next.instance_count[0][static_cast<std::size_t>(NfType::kProxy)] = 0;
  next.instance_count[0][static_cast<std::size_t>(NfType::kIds)] = 1;
  InstanceInventory inventory;
  inventory.by_node_type.assign(1, {});
  inventory.by_node_type[0][static_cast<std::size_t>(NfType::kProxy)] = {4};

  const PlanDelta delta = diff_plans(prev, inventory, next, {}, 9);
  ASSERT_EQ(delta.ops.size(), 2u);
  EXPECT_EQ(delta.ops[0].kind, InstanceOp::Kind::kRetire);
  EXPECT_EQ(delta.ops[0].id, 4u);
  EXPECT_EQ(delta.ops[1].kind, InstanceOp::Kind::kLaunch);
  EXPECT_EQ(delta.ops[1].id, 9u);
  EXPECT_EQ(delta.ops[1].type, NfType::kIds);

  const InstanceInventory advanced = advance_inventory(inventory, delta);
  EXPECT_TRUE(
      advanced.by_node_type[0][static_cast<std::size_t>(NfType::kProxy)]
          .empty());
  EXPECT_EQ(
      advanced.by_node_type[0][static_cast<std::size_t>(NfType::kIds)],
      (std::vector<vnf::InstanceId>{9}));
}

TEST(DiffPlans, SurvivorsKeepFrontOfBucket) {
  // Shrinking from 3 FW to 1 retires the back two ids; the front id (the
  // one surviving sub-class plans point at) stays.
  PlacementPlan prev;
  prev.feasible = true;
  prev.instance_count.assign(1, {});
  prev.instance_count[0][0] = 3;
  PlacementPlan next = prev;
  next.instance_count[0][0] = 1;
  InstanceInventory inventory;
  inventory.by_node_type.assign(1, {});
  inventory.by_node_type[0][0] = {1, 2, 3};

  const PlanDelta delta = diff_plans(prev, inventory, next, {}, 4);
  EXPECT_EQ(delta.instances_retired, 2u);
  ASSERT_EQ(delta.ops.size(), 2u);
  EXPECT_EQ(delta.ops[0].id, 2u);
  EXPECT_EQ(delta.ops[1].id, 3u);
  const InstanceInventory advanced = advance_inventory(inventory, delta);
  EXPECT_EQ(advanced.by_node_type[0][0],
            (std::vector<vnf::InstanceId>{1}));
}

TEST(ModeledControlLatency, ParallelBootsPlusSerialRuleInstalls) {
  const orch::OrchestrationTimings timings;
  PlanDelta delta;
  InstanceOp launch;
  launch.kind = InstanceOp::Kind::kLaunch;
  launch.type = NfType::kProxy;  // full VM: 30 s boot dominates
  delta.ops.push_back(launch);
  InstanceOp reconf;
  reconf.kind = InstanceOp::Kind::kReconfigure;
  reconf.type = NfType::kFirewall;
  delta.ops.push_back(reconf);
  EXPECT_NEAR(modeled_control_latency(delta, 2, timings),
              timings.normal_vm_boot + 2 * timings.rule_install, 1e-12);
  EXPECT_NEAR(modeled_control_latency({}, 0, timings), 0.0, 1e-12);
}

}  // namespace
}  // namespace apple::core
