#include "core/ilp_builder.h"

#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "net/topologies.h"

namespace apple::core {
namespace {

using vnf::NfType;

struct TinyScenario {
  net::Topology topo = net::make_line(3, 64.0);
  std::vector<vnf::PolicyChain> chains{{NfType::kFirewall, NfType::kIds}};
  std::vector<traffic::TrafficClass> classes;
  PlacementInput input;

  explicit TinyScenario(double rate = 500.0) {
    traffic::TrafficClass cls;
    cls.id = 0;
    cls.src = 0;
    cls.dst = 2;
    cls.path = {0, 1, 2};
    cls.chain_id = 0;
    cls.rate_mbps = rate;
    classes.push_back(cls);
    input.topology = &topo;
    input.classes = classes;
    input.chains = chains;
  }
};

TEST(IlpBuilder, VariableLayout) {
  TinyScenario s;
  const IlpBuilder builder(s.input);
  // q vars only for (switch-on-path, type-in-chain): 3 switches x 2 types.
  // d vars: 3 positions x 2 stages.
  EXPECT_EQ(builder.model().num_vars(), 6u + 6u);
  EXPECT_NE(builder.q_var(1, NfType::kFirewall), IlpBuilder::kInvalidVar);
  EXPECT_EQ(builder.q_var(1, NfType::kProxy), IlpBuilder::kInvalidVar);
  EXPECT_NE(builder.d_var(0, 0, 0), IlpBuilder::kInvalidVar);
}

TEST(IlpBuilder, HostlessSwitchGetsNoVariables) {
  TinyScenario s;
  s.topo.node(1).host_cores = 0.0;  // switch 1 loses its APPLE host
  const IlpBuilder builder(s.input);
  EXPECT_EQ(builder.q_var(1, NfType::kFirewall), IlpBuilder::kInvalidVar);
  EXPECT_EQ(builder.d_var(0, 1, 0), IlpBuilder::kInvalidVar);
}

TEST(IlpBuilder, IntegralityFlagControlsQVars) {
  TinyScenario s;
  const IlpBuilder mip(s.input, /*integral_q=*/true);
  const IlpBuilder lp(s.input, /*integral_q=*/false);
  EXPECT_TRUE(mip.model().has_integer_vars());
  EXPECT_FALSE(lp.model().has_integer_vars());
}

TEST(IlpBuilder, LpRelaxationLowerBoundsInstanceCount) {
  TinyScenario s(500.0);
  const IlpBuilder builder(s.input, /*integral_q=*/false);
  const lp::LpSolution sol = lp::SimplexSolver().solve(builder.model());
  ASSERT_TRUE(sol.optimal());
  // 500 Mbps needs 500/900 FW + 500/600 IDS fractional instances.
  EXPECT_NEAR(sol.objective, 500.0 / 900.0 + 500.0 / 600.0, 1e-6);
}

TEST(IlpBuilder, SolutionRoundTripsThroughExtractPlan) {
  TinyScenario s;
  const IlpBuilder builder(s.input, /*integral_q=*/false);
  const lp::LpSolution sol = lp::SimplexSolver().solve(builder.model());
  ASSERT_TRUE(sol.optimal());
  const PlacementPlan plan = builder.extract_plan(s.input, sol.x);
  ASSERT_EQ(plan.distribution.size(), 1u);
  // Completion must hold in the extracted distribution.
  for (std::size_t j = 0; j < 2; ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      total += plan.distribution[0].fraction[i][j];
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(IlpBuilder, InfeasibleWhenNoHostOnPath) {
  TinyScenario s;
  for (net::NodeId v = 0; v < s.topo.num_nodes(); ++v) {
    s.topo.node(v).host_cores = 0.0;
  }
  const IlpBuilder builder(s.input, false);
  const lp::LpSolution sol = lp::SimplexSolver().solve(builder.model());
  // Completion rows have no variables: infeasible.
  EXPECT_EQ(sol.status, lp::SolveStatus::kInfeasible);
}

TEST(IlpBuilder, CapacityRowsForceEnoughInstances) {
  TinyScenario s(2000.0);  // > 2 FW instances worth of traffic
  const IlpBuilder builder(s.input, false);
  const lp::LpSolution sol = lp::SimplexSolver().solve(builder.model());
  ASSERT_TRUE(sol.optimal());
  // Fractional: 2000/900 + 2000/600.
  EXPECT_NEAR(sol.objective, 2000.0 / 900.0 + 2000.0 / 600.0, 1e-6);
}

TEST(IlpBuilder, SharedSwitchMultiplexesClasses) {
  // Two classes crossing at a middle switch share instances there: the LP
  // bound equals the pooled load, not the per-class sum of ceilings.
  net::Topology topo = net::make_star(4, 64.0);  // hub=0, leaves 1..4
  std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> classes(2);
  classes[0] = {0, 1, 2, {1, 0, 2}, 0, 450.0};
  classes[1] = {1, 3, 4, {3, 0, 4}, 0, 450.0};
  PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;
  const IlpBuilder builder(input, false);
  const lp::LpSolution sol = lp::SimplexSolver().solve(builder.model());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 900.0 / 900.0, 1e-6);  // one pooled FW
}

}  // namespace
}  // namespace apple::core
