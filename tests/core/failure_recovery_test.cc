// Failure-injection tests: an APPLE host dies (the switch keeps
// forwarding) and the controller recomputes a placement that avoids it
// while preserving all three properties.
#include <gtest/gtest.h>

#include "core/apple_controller.h"
#include "core/rule_generator.h"
#include "net/topologies.h"

namespace apple::core {
namespace {

ControllerConfig config() {
  ControllerConfig cfg;
  cfg.engine.strategy = PlacementStrategy::kGreedy;
  cfg.policied_fraction = 0.5;
  return cfg;
}

TEST(FailureRecovery, RepairedEpochAvoidsFailedHost) {
  const net::Topology topo = net::make_internet2();
  const AppleController controller(topo, vnf::default_policy_chains(),
                                   config());
  const traffic::TrafficMatrix tm =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 5000.0});
  const Epoch before = controller.optimize(tm);

  // Fail the busiest host of the original placement.
  net::NodeId victim = 0;
  double most_cores = -1.0;
  for (net::NodeId v = 0; v < topo.num_nodes(); ++v) {
    double cores = 0.0;
    for (std::size_t n = 0; n < vnf::kNumNfTypes; ++n) {
      cores += before.plan.instance_count[v][n] *
               vnf::spec_of(static_cast<vnf::NfType>(n)).cores_required;
    }
    if (cores > most_cores) {
      most_cores = cores;
      victim = v;
    }
  }
  ASSERT_GT(most_cores, 0.0);

  const Epoch repaired = controller.optimize_excluding_host(tm, victim);
  for (std::size_t n = 0; n < vnf::kNumNfTypes; ++n) {
    EXPECT_EQ(repaired.plan.instance_count[victim][n], 0u)
        << "instances still on the failed host";
  }
  // Classes and their paths are unchanged: interference freedom holds
  // through the failure (only the server died, not the switch).
  ASSERT_EQ(repaired.classes.size(), before.classes.size());
  for (std::size_t h = 0; h < before.classes.size(); ++h) {
    EXPECT_EQ(repaired.classes[h].path, before.classes[h].path);
  }
}

TEST(FailureRecovery, RepairedEpochStillEnforcesEveryChain) {
  const net::Topology topo = net::make_internet2();
  const AppleController controller(topo, vnf::default_policy_chains(),
                                   config());
  const traffic::TrafficMatrix tm =
      traffic::make_gravity_matrix(topo.num_nodes(), {.total_mbps = 5000.0});
  const net::NodeId victim = topo.find_node("IPLS");  // a hub
  const Epoch repaired = controller.optimize_excluding_host(tm, victim);

  net::Topology degraded = topo;
  degraded.node(victim).host_cores = 0.0;
  PlacementInput input;
  input.topology = &degraded;
  input.classes = repaired.classes;
  input.chains = controller.chains();
  EXPECT_EQ(check_plan(input, repaired.plan), "");

  dataplane::DataPlane dp(degraded);
  RuleGenerator().install(input, repaired.subclasses, repaired.inventory, dp);
  for (const traffic::TrafficClass& cls : repaired.classes) {
    hsa::PacketHeader h;
    h.src_ip = 0x0a000000u + cls.id;
    h.proto = 6;
    const auto walk = dp.walk(cls.id, h);
    ASSERT_TRUE(walk.delivered) << walk.error;
    EXPECT_EQ(dp.traversed_types(walk.packet),
              controller.chains()[cls.chain_id]);
    EXPECT_EQ(walk.packet.switch_trace, cls.path);
  }
}

TEST(FailureRecovery, ImpossibleRecoveryThrows) {
  // A 2-node line where one host dies and the other cannot absorb the load.
  const net::Topology topo = net::make_line(2, 8.0);
  ControllerConfig cfg = config();
  cfg.policied_fraction = 1.0;
  const AppleController controller(topo, vnf::default_policy_chains(), cfg);
  traffic::TrafficMatrix tm(2);
  tm.set(0, 1, 3000.0);  // needs far more than 8 cores of instances
  EXPECT_THROW(controller.optimize_excluding_host(tm, 0),
               std::runtime_error);
  EXPECT_THROW(controller.optimize_excluding_host(tm, 9),
               std::invalid_argument);
}

}  // namespace
}  // namespace apple::core
