#include "core/subclass_assigner.h"

#include <gtest/gtest.h>

#include <map>

#include "core/optimization_engine.h"
#include "net/topologies.h"

namespace apple::core {
namespace {

using vnf::NfType;

PlacementInput make_input(const net::Topology& topo,
                          const std::vector<traffic::TrafficClass>& classes,
                          const std::vector<vnf::PolicyChain>& chains) {
  PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;
  return input;
}

struct Prepared {
  PlacementPlan plan;
  InstanceInventory inventory;
  std::vector<std::vector<dataplane::SubclassPlan>> subclasses;
};

Prepared prepare(const PlacementInput& input,
                 const AssignerOptions& options = {}) {
  EngineOptions eopts;
  eopts.strategy = PlacementStrategy::kGreedy;
  Prepared out;
  out.plan = OptimizationEngine(eopts).place(input);
  EXPECT_TRUE(out.plan.feasible) << out.plan.infeasibility_reason;
  out.inventory = materialize_inventory(input, out.plan);
  out.subclasses = assign_subclasses(input, out.plan, out.inventory, options);
  return out;
}

TEST(MaterializeInventory, DenseSequentialIds) {
  const net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 1500.0};  // needs 2 FW instances
  const PlacementInput input = make_input(topo, classes, chains);
  const Prepared p = prepare(input);
  std::size_t count = 0;
  std::vector<bool> seen(16, false);
  for (const auto& per_node : p.inventory.by_node_type) {
    for (const auto& bucket : per_node) {
      for (const vnf::InstanceId id : bucket) {
        ++count;
        ASSERT_LT(id, seen.size());
        EXPECT_FALSE(seen[id]);  // unique
        seen[id] = true;
        EXPECT_GE(id, 1u);       // 1-based
      }
    }
  }
  EXPECT_EQ(count, p.plan.total_instances());
}

TEST(AssignSubclasses, WeightsSumToOne) {
  const net::Topology topo = net::make_line(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{
      {NfType::kFirewall, NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(2);
  classes[0] = {0, 0, 3, {0, 1, 2, 3}, 0, 1100.0};
  classes[1] = {1, 1, 3, {1, 2, 3}, 0, 700.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const Prepared p = prepare(input);
  for (const auto& plans : p.subclasses) {
    ASSERT_FALSE(plans.empty());
    double weight = 0.0;
    for (const auto& sub : plans) {
      EXPECT_GE(sub.weight, 0.0);
      weight += sub.weight;
    }
    EXPECT_NEAR(weight, 1.0, 1e-9);
  }
}

TEST(AssignSubclasses, ItinerariesFollowPathAndChainOrder) {
  const net::Topology topo = net::make_line(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{
      {NfType::kNat, NfType::kFirewall, NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 3, {0, 1, 2, 3}, 0, 1300.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const Prepared p = prepare(input);

  // Map instance -> type from the inventory.
  std::unordered_map<vnf::InstanceId, NfType> type_of;
  for (net::NodeId v = 0; v < topo.num_nodes(); ++v) {
    for (std::size_t n = 0; n < vnf::kNumNfTypes; ++n) {
      for (const vnf::InstanceId id : p.inventory.by_node_type[v][n]) {
        type_of[id] = static_cast<NfType>(n);
      }
    }
  }
  for (const auto& sub : p.subclasses[0]) {
    // Flatten instance sequence: types must equal the chain exactly.
    std::vector<NfType> types;
    std::size_t last_pos = 0;
    for (const auto& visit : sub.itinerary) {
      const auto it = std::find(classes[0].path.begin() + last_pos,
                                classes[0].path.end(), visit.at_switch);
      ASSERT_NE(it, classes[0].path.end()) << "off-path or out of order";
      last_pos = static_cast<std::size_t>(it - classes[0].path.begin());
      for (const vnf::InstanceId id : visit.instances) {
        types.push_back(type_of.at(id));
      }
    }
    EXPECT_EQ(types, chains[0]);
  }
}

TEST(AssignSubclasses, RespectsPerInstanceCapacity) {
  const net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 1700.0};  // 3 IDS instances
  const PlacementInput input = make_input(topo, classes, chains);
  const Prepared p = prepare(input);

  std::map<vnf::InstanceId, double> load;
  for (const auto& sub : p.subclasses[0]) {
    for (const auto& visit : sub.itinerary) {
      for (const vnf::InstanceId id : visit.instances) {
        load[id] += sub.weight * classes[0].rate_mbps;
      }
    }
  }
  for (const auto& [id, mbps] : load) {
    EXPECT_LE(mbps, 600.0 + 1e-6) << "instance " << id;
  }
}

TEST(AssignSubclasses, SingleInstanceYieldsSingleSubclass) {
  const net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 400.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const Prepared p = prepare(input);
  ASSERT_EQ(p.subclasses[0].size(), 1u);
  EXPECT_NEAR(p.subclasses[0][0].weight, 1.0, 1e-12);
}

TEST(AssignSubclasses, EmptyChainClassGetsPlainSubclass) {
  net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{{}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 400.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const Prepared p = prepare(input);
  ASSERT_EQ(p.subclasses[0].size(), 1u);
  EXPECT_TRUE(p.subclasses[0][0].itinerary.empty());
}

TEST(AssignSubclasses, ThrowsWhenPlanLacksInstances) {
  const net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 400.0};
  const PlacementInput input = make_input(topo, classes, chains);
  Prepared p = prepare(input);
  // Sabotage: drop all instances.
  PlacementPlan empty = p.plan;
  for (auto& per_switch : empty.instance_count) per_switch = {};
  const InstanceInventory none = materialize_inventory(input, empty);
  EXPECT_THROW(assign_subclasses(input, p.plan, none),
               std::invalid_argument);
}

TEST(ClassifierRules, HashingCostsOneRule) {
  EXPECT_EQ(classifier_rules_for_weight(0.37, SubclassMethod::kConsistentHash,
                                        8),
            1u);
}

TEST(ClassifierRules, PrefixSplitCostsPopcount) {
  using enum SubclassMethod;
  // 0.5 = 1 prefix (e.g. /25 of a /24, the paper's example).
  EXPECT_EQ(classifier_rules_for_weight(0.5, kPrefixSplit, 8), 1u);
  // 0.375 = 1/4 + 1/8 = 2 prefixes.
  EXPECT_EQ(classifier_rules_for_weight(0.375, kPrefixSplit, 8), 2u);
  // 255/256 = 8 prefixes.
  EXPECT_EQ(classifier_rules_for_weight(255.0 / 256.0, kPrefixSplit, 8), 8u);
  // Tiny weights still cost one rule.
  EXPECT_EQ(classifier_rules_for_weight(1e-9, kPrefixSplit, 8), 1u);
  EXPECT_THROW(classifier_rules_for_weight(0.5, kPrefixSplit, 0),
               std::invalid_argument);
}

TEST(AssignSubclasses, PrefixMethodInflatesRuleCounts) {
  const net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 1700.0};  // split across 3 instances
  const PlacementInput input = make_input(topo, classes, chains);

  AssignerOptions hash_opts;
  hash_opts.method = SubclassMethod::kConsistentHash;
  AssignerOptions prefix_opts;
  prefix_opts.method = SubclassMethod::kPrefixSplit;
  const Prepared by_hash = prepare(input, hash_opts);
  const Prepared by_prefix = prepare(input, prefix_opts);

  std::size_t hash_rules = 0, prefix_rules = 0;
  for (const auto& sub : by_hash.subclasses[0]) {
    hash_rules += sub.classifier_prefix_rules;
  }
  for (const auto& sub : by_prefix.subclasses[0]) {
    prefix_rules += sub.classifier_prefix_rules;
  }
  // Sec. V-A: the prefix method "may need multiple rules to represent a
  // single sub-class".
  EXPECT_GE(prefix_rules, hash_rules);
}

}  // namespace
}  // namespace apple::core
