#include "core/optimization_engine.h"

#include <gtest/gtest.h>

#include <random>

#include "core/epoch_pipeline.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "traffic/synthesis.h"

namespace apple::core {
namespace {

using vnf::NfType;

PlacementInput make_input(const net::Topology& topo,
                          const std::vector<traffic::TrafficClass>& classes,
                          const std::vector<vnf::PolicyChain>& chains) {
  PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;
  return input;
}

OptimizationEngine engine_for(PlacementStrategy strategy) {
  EngineOptions options;
  options.strategy = strategy;
  return OptimizationEngine(options);
}

class AllStrategies : public ::testing::TestWithParam<PlacementStrategy> {};

TEST_P(AllStrategies, SolvesTinyChainFeasibly) {
  const net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{
      {NfType::kFirewall, NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 500.0};
  const PlacementInput input = make_input(topo, classes, chains);

  const PlacementPlan plan = engine_for(GetParam()).place(input);
  ASSERT_TRUE(plan.feasible) << plan.infeasibility_reason;
  EXPECT_EQ(check_plan(input, plan), "");
  // 500 Mbps through FW + IDS: exactly one of each suffices.
  EXPECT_EQ(plan.total_instances(), 2u);
  EXPECT_GE(plan.solve_seconds, 0.0);
}

TEST_P(AllStrategies, MultiplexesSharedSwitch) {
  // Star: two crossing classes, each 450 Mbps, chain = FW only. A single
  // pooled firewall at the hub is optimal.
  const net::Topology topo = net::make_star(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> classes(2);
  classes[0] = {0, 1, 2, {1, 0, 2}, 0, 450.0};
  classes[1] = {1, 3, 4, {3, 0, 4}, 0, 450.0};
  const PlacementInput input = make_input(topo, classes, chains);

  const PlacementPlan plan = engine_for(GetParam()).place(input);
  ASSERT_TRUE(plan.feasible) << plan.infeasibility_reason;
  EXPECT_EQ(check_plan(input, plan), "");
  if (GetParam() == PlacementStrategy::kLpRound) {
    // The LP relaxation is degenerate here (hub pooling and leaf splitting
    // tie at objective 1.0), so LP-guided rounding may land on either.
    EXPECT_LE(plan.total_instances(), 2u);
  } else {
    EXPECT_EQ(plan.total_instances(), 1u);
    EXPECT_EQ(plan.instances_of(0, NfType::kFirewall), 1u);
  }
}

TEST_P(AllStrategies, HandlesZeroRateClasses) {
  const net::Topology topo = net::make_line(3, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kNat}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 0.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const PlacementPlan plan = engine_for(GetParam()).place(input);
  ASSERT_TRUE(plan.feasible) << plan.infeasibility_reason;
  EXPECT_EQ(check_plan(input, plan), "");
  EXPECT_EQ(plan.total_instances(), 0u);  // zero traffic needs no instance
}

INSTANTIATE_TEST_SUITE_P(Strategies, AllStrategies,
                         ::testing::Values(PlacementStrategy::kExact,
                                           PlacementStrategy::kLpRound,
                                           PlacementStrategy::kGreedy),
                         [](const auto& param_info) {
                           std::string name = to_string(param_info.param);
                           std::erase(name, '-');  // gtest-safe identifier
                           return name;
                         });

TEST(OptimizationEngine, GreedyDetectsInfeasibility) {
  // Hosts too small for even one IDS (8 cores needed).
  const net::Topology topo = net::make_line(3, 4.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 100.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const PlacementPlan plan =
      engine_for(PlacementStrategy::kGreedy).place(input);
  EXPECT_FALSE(plan.feasible);
  EXPECT_FALSE(plan.infeasibility_reason.empty());
}

TEST(OptimizationEngine, ExactDetectsInfeasibility) {
  const net::Topology topo = net::make_line(3, 4.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 100.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const PlacementPlan plan =
      engine_for(PlacementStrategy::kExact).place(input);
  EXPECT_FALSE(plan.feasible);
}

TEST(OptimizationEngine, GreedySplitsJumboClasses) {
  // A class beyond any single instance's capacity (Sec. IV-B "jumbo
  // classes") must be split across instances.
  const net::Topology topo = net::make_line(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kIds}};
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 3, {0, 1, 2, 3}, 0, 1500.0};  // 600 Mbps per IDS
  const PlacementInput input = make_input(topo, classes, chains);
  const PlacementPlan plan =
      engine_for(PlacementStrategy::kGreedy).place(input);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(check_plan(input, plan), "");
  EXPECT_EQ(plan.total_instances(), 3u);  // ceil(1500/600)
}

TEST(OptimizationEngine, ExactMatchesLowerBound) {
  const net::Topology topo = net::make_line(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{
      {NfType::kFirewall, NfType::kNat}};
  std::vector<traffic::TrafficClass> classes(2);
  classes[0] = {0, 0, 3, {0, 1, 2, 3}, 0, 400.0};
  classes[1] = {1, 1, 3, {1, 2, 3}, 0, 400.0};
  const PlacementInput input = make_input(topo, classes, chains);
  const PlacementPlan plan =
      engine_for(PlacementStrategy::kExact).place(input);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.lower_bound,
                   static_cast<double>(plan.total_instances()));
  // Pooled 800 Mbps fits one FW + one NAT at a shared downstream switch.
  EXPECT_EQ(plan.total_instances(), 2u);
}

// Property sweep: on random small scenarios, every strategy produces a
// plan satisfying all constraints, and greedy/LP-round stay within a small
// factor of the exact optimum.
class EngineRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineRandomSweep, StrategiesAgreeWithinFactor) {
  std::mt19937_64 rng(GetParam());
  const net::Topology topo = net::make_grid(2, 3, 64.0);
  const net::AllPairsPaths routing(topo);
  std::vector<vnf::PolicyChain> chains{
      {NfType::kFirewall},
      {NfType::kFirewall, NfType::kNat},
      {NfType::kNat, NfType::kIds},
  };
  std::uniform_int_distribution<std::size_t> node(0, topo.num_nodes() - 1);
  std::uniform_int_distribution<std::size_t> chain(0, chains.size() - 1);
  std::uniform_real_distribution<double> rate(50.0, 800.0);
  std::vector<traffic::TrafficClass> classes;
  for (std::uint32_t k = 0; k < 5; ++k) {
    net::NodeId s = static_cast<net::NodeId>(node(rng));
    net::NodeId d = static_cast<net::NodeId>(node(rng));
    if (s == d) d = static_cast<net::NodeId>((d + 1) % topo.num_nodes());
    traffic::TrafficClass cls;
    cls.id = k;
    cls.src = s;
    cls.dst = d;
    cls.path = *routing.path(s, d);
    cls.chain_id = static_cast<traffic::ChainId>(chain(rng));
    cls.rate_mbps = rate(rng);
    classes.push_back(cls);
  }
  const PlacementInput input = make_input(topo, classes, chains);

  const PlacementPlan exact =
      engine_for(PlacementStrategy::kExact).place(input);
  const PlacementPlan lp_round =
      engine_for(PlacementStrategy::kLpRound).place(input);
  const PlacementPlan greedy =
      engine_for(PlacementStrategy::kGreedy).place(input);

  ASSERT_TRUE(exact.feasible) << exact.infeasibility_reason;
  ASSERT_TRUE(lp_round.feasible) << lp_round.infeasibility_reason;
  ASSERT_TRUE(greedy.feasible) << greedy.infeasibility_reason;
  EXPECT_EQ(check_plan(input, exact), "");
  EXPECT_EQ(check_plan(input, lp_round), "");
  EXPECT_EQ(check_plan(input, greedy), "");

  EXPECT_GE(greedy.total_instances(), exact.total_instances());
  EXPECT_GE(lp_round.total_instances(), exact.total_instances());
  // Approximation quality: within 2x + 2 of optimum on these sizes.
  EXPECT_LE(greedy.total_instances(), 2 * exact.total_instances() + 2);
  EXPECT_LE(lp_round.total_instances(), 2 * exact.total_instances() + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomSweep, ::testing::Range(1, 9));

TEST(OptimizationEngine, ReplacePinsUnchangedDistributions) {
  const net::Topology topo = net::make_line(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall},
                                             {NfType::kNat}};
  std::vector<traffic::TrafficClass> prev_classes(2);
  prev_classes[0] = {0, 0, 3, {0, 1, 2, 3}, 0, 400.0};
  prev_classes[1] = {1, 1, 3, {1, 2, 3}, 1, 300.0};
  const PlacementInput prev_input = make_input(topo, prev_classes, chains);
  const OptimizationEngine engine = engine_for(PlacementStrategy::kGreedy);
  const PlacementPlan prev = engine.place(prev_input);
  ASSERT_TRUE(prev.feasible);

  std::vector<traffic::TrafficClass> next_classes = prev_classes;
  next_classes[1].rate_mbps = 2000.0;  // dirty; class 0 stays pinned
  const PlacementInput next_input = make_input(topo, next_classes, chains);
  const ClassDelta delta = diff_classes(prev_classes, next_classes);
  ASSERT_EQ(delta.unchanged, (std::vector<std::size_t>{0}));
  ASSERT_EQ(delta.rate_changed, (std::vector<std::size_t>{1}));

  const PlacementPlan next = engine.replace(next_input, prev, delta);
  ASSERT_TRUE(next.feasible) << next.infeasibility_reason;
  EXPECT_EQ(check_plan(next_input, next), "");
  EXPECT_EQ(next.strategy, "greedy-delta");
  // The pinned class's spatial distribution is carried over verbatim.
  EXPECT_EQ(next.distribution[0].fraction, prev.distribution[0].fraction);
  // The grown class got the extra capacity it needs.
  EXPECT_GE(next.total_instances(), prev.total_instances());
}

TEST(OptimizationEngine, ReplaceReportsResidualInfeasibility) {
  // One host, exactly one FW's worth of cores: the grown demand cannot be
  // packed incrementally, and the caller must fall back to place().
  net::Topology topo = net::make_line(3, 4.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> prev_classes(1);
  prev_classes[0] = {0, 0, 2, {0, 1, 2}, 0, 500.0};
  const PlacementInput prev_input = make_input(topo, prev_classes, chains);
  const OptimizationEngine engine = engine_for(PlacementStrategy::kGreedy);
  const PlacementPlan prev = engine.place(prev_input);
  ASSERT_TRUE(prev.feasible);

  std::vector<traffic::TrafficClass> next_classes = prev_classes;
  next_classes[0].rate_mbps = 5000.0;
  const PlacementInput next_input = make_input(topo, next_classes, chains);
  const ClassDelta delta = diff_classes(prev_classes, next_classes);
  const PlacementPlan next = engine.replace(next_input, prev, delta);
  EXPECT_FALSE(next.feasible);
  EXPECT_FALSE(next.infeasibility_reason.empty());
}

TEST(OptimizationEngine, StrategyNames) {
  EXPECT_STREQ(to_string(PlacementStrategy::kExact), "exact");
  EXPECT_STREQ(to_string(PlacementStrategy::kLpRound), "lp-round");
  EXPECT_STREQ(to_string(PlacementStrategy::kGreedy), "greedy");
}

}  // namespace
}  // namespace apple::core
