#include "core/online_placer.h"

#include <gtest/gtest.h>

#include <random>

#include "core/optimization_engine.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "traffic/synthesis.h"

namespace apple::core {
namespace {

using vnf::NfType;

struct Seeded {
  net::Topology topo = net::make_line(4, 64.0);
  std::vector<vnf::PolicyChain> chains{
      {NfType::kFirewall, NfType::kIds},
      {NfType::kNat},
  };
  std::vector<traffic::TrafficClass> classes;
  PlacementInput input;
  PlacementPlan plan;

  Seeded() {
    classes.push_back({0, 0, 3, {0, 1, 2, 3}, 0, 400.0});
    input.topology = &topo;
    input.classes = classes;
    input.chains = chains;
    EngineOptions options;
    options.strategy = PlacementStrategy::kGreedy;
    plan = OptimizationEngine(options).place(input);
    EXPECT_TRUE(plan.feasible);
  }
};

TEST(OnlinePlacer, SeedsFromPlan) {
  Seeded s;
  const OnlinePlacer placer(s.input, s.plan);
  EXPECT_EQ(placer.total_instances(), s.plan.total_instances());
}

TEST(OnlinePlacer, RejectsInfeasibleSeed) {
  Seeded s;
  PlacementPlan bad = s.plan;
  bad.feasible = false;
  EXPECT_THROW(OnlinePlacer(s.input, bad), std::invalid_argument);
}

TEST(OnlinePlacer, ReusesResidualCapacityForSmallArrival) {
  Seeded s;
  OnlinePlacer placer(s.input, s.plan);
  // Seed uses 400 of 900 FW and 400 of 600 IDS: a 100 Mbps arrival on the
  // same path fits without opening anything.
  traffic::TrafficClass arrival{1, 0, 3, {0, 1, 2, 3}, 0, 100.0};
  const OnlineArrival result = placer.add_class(arrival);
  ASSERT_TRUE(result.accepted) << result.reason;
  EXPECT_EQ(result.instances_opened, 0u);
  EXPECT_EQ(placer.total_instances(), s.plan.total_instances());
  // Completion: every stage fully assigned.
  for (std::size_t j = 0; j < 2; ++j) {
    double total = 0.0;
    for (const auto& row : result.distribution.fraction) total += row[j];
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(OnlinePlacer, OpensInstancesForLargeArrival) {
  Seeded s;
  OnlinePlacer placer(s.input, s.plan);
  traffic::TrafficClass arrival{1, 1, 3, {1, 2, 3}, 0, 800.0};
  const OnlineArrival result = placer.add_class(arrival);
  ASSERT_TRUE(result.accepted) << result.reason;
  EXPECT_GT(result.instances_opened, 0u);
}

TEST(OnlinePlacer, PrecedencePrefixesHoldForArrivals) {
  Seeded s;
  OnlinePlacer placer(s.input, s.plan);
  traffic::TrafficClass arrival{1, 0, 3, {0, 1, 2, 3}, 0, 700.0};
  const OnlineArrival result = placer.add_class(arrival);
  ASSERT_TRUE(result.accepted) << result.reason;
  // Eq. 3: prefix of stage j <= prefix of stage j-1 at every position.
  double prefix0 = 0.0, prefix1 = 0.0;
  for (const auto& row : result.distribution.fraction) {
    prefix0 += row[0];
    prefix1 += row[1];
    EXPECT_LE(prefix1, prefix0 + 1e-9);
  }
}

TEST(OnlinePlacer, RejectsWhenPathHasNoCapacity) {
  net::Topology tiny = net::make_line(2, 4.0);  // an 8-core IDS fits nowhere
  std::vector<vnf::PolicyChain> chains{{NfType::kIds}};
  std::vector<traffic::TrafficClass> none;
  PlacementInput input;
  input.topology = &tiny;
  input.classes = none;
  input.chains = chains;
  PlacementPlan empty;
  empty.feasible = true;
  empty.instance_count.assign(2, {});
  OnlinePlacer placer(input, empty);
  traffic::TrafficClass arrival{0, 0, 1, {0, 1}, 0, 100.0};
  const OnlineArrival result = placer.add_class(arrival);
  EXPECT_FALSE(result.accepted);
  EXPECT_FALSE(result.reason.empty());
  // Rollback: nothing opened, nothing used.
  EXPECT_EQ(placer.total_instances(), 0u);
  EXPECT_DOUBLE_EQ(placer.used_mbps(0, NfType::kIds), 0.0);
}

TEST(OnlinePlacer, RejectsDuplicateAndUnknownChain) {
  Seeded s;
  OnlinePlacer placer(s.input, s.plan);
  EXPECT_FALSE(placer.add_class(s.classes[0]).accepted);  // id resident
  traffic::TrafficClass bad{7, 0, 3, {0, 1, 2, 3}, 9, 10.0};
  EXPECT_FALSE(placer.add_class(bad).accepted);
  traffic::TrafficClass no_path{8, 0, 3, {}, 0, 10.0};
  EXPECT_FALSE(placer.add_class(no_path).accepted);
}

TEST(OnlinePlacer, ZeroRateArrivalIsFree) {
  Seeded s;
  OnlinePlacer placer(s.input, s.plan);
  traffic::TrafficClass arrival{1, 0, 3, {0, 1, 2, 3}, 0, 0.0};
  const OnlineArrival result = placer.add_class(arrival);
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(result.instances_opened, 0u);
  EXPECT_EQ(placer.total_instances(), s.plan.total_instances());
}

TEST(OnlinePlacer, DepartureReleasesIdleInstances) {
  Seeded s;
  OnlinePlacer placer(s.input, s.plan);
  const std::uint64_t before = placer.total_instances();
  const OnlineDeparture gone = placer.remove_class(0);
  EXPECT_GT(gone.instances_released, 0u);
  EXPECT_LT(placer.total_instances(), before);
  EXPECT_FALSE(gone.now_idle.empty());
  // Removing again is a no-op.
  EXPECT_EQ(placer.remove_class(0).instances_released, 0u);
}

TEST(OnlinePlacer, ArriveDepartCycleIsStable) {
  Seeded s;
  OnlinePlacer placer(s.input, s.plan);
  const std::uint64_t baseline = placer.total_instances();
  for (traffic::ClassId id = 10; id < 16; ++id) {
    traffic::TrafficClass arrival{id, 0, 3, {0, 1, 2, 3}, 0, 300.0};
    ASSERT_TRUE(placer.add_class(arrival).accepted);
  }
  for (traffic::ClassId id = 10; id < 16; ++id) {
    placer.remove_class(id);
  }
  // All online capacity released: back to (at most) the seed footprint.
  EXPECT_LE(placer.total_instances(), baseline);
}

// Property: under random churn on Internet2, the online footprint stays
// within a small factor of a fresh global optimization over the same
// resident set.
class OnlineChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(OnlineChurnSweep, FootprintStaysNearGlobalRerun) {
  std::mt19937_64 rng(GetParam());
  const net::Topology topo = net::make_internet2();
  const net::AllPairsPaths routing(topo);
  const auto chain_span = vnf::default_policy_chains();
  std::vector<vnf::PolicyChain> chains(chain_span.begin(), chain_span.end());

  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(),
      {.total_mbps = 6000.0, .seed = static_cast<std::uint64_t>(GetParam())});
  auto classes = traffic::build_classes(
      topo, routing, tm,
      traffic::uniform_chain_assignment(chains.size(), 0, 0.5));
  PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;
  EngineOptions options;
  options.strategy = PlacementStrategy::kGreedy;
  const PlacementPlan plan = OptimizationEngine(options).place(input);
  ASSERT_TRUE(plan.feasible);

  OnlinePlacer placer(input, plan);
  // Churn: remove a third of the classes, add new ones on random paths.
  std::vector<traffic::TrafficClass> resident = classes;
  std::uniform_int_distribution<std::size_t> pick_node(0,
                                                       topo.num_nodes() - 1);
  std::uniform_real_distribution<double> rate(20.0, 200.0);
  traffic::ClassId next_id = 10000;
  for (int churn = 0; churn < 30; ++churn) {
    if (!resident.empty() && churn % 3 == 0) {
      const std::size_t victim = churn % resident.size();
      placer.remove_class(resident[victim].id);
      resident.erase(resident.begin() +
                     static_cast<std::ptrdiff_t>(victim));
    } else {
      net::NodeId a = static_cast<net::NodeId>(pick_node(rng));
      net::NodeId b = static_cast<net::NodeId>(pick_node(rng));
      if (a == b) b = static_cast<net::NodeId>((b + 1) % topo.num_nodes());
      traffic::TrafficClass arrival;
      arrival.id = next_id++;
      arrival.src = a;
      arrival.dst = b;
      arrival.path = *routing.path(a, b);
      arrival.chain_id =
          static_cast<traffic::ChainId>(churn % chains.size());
      arrival.rate_mbps = rate(rng);
      if (placer.add_class(arrival).accepted) resident.push_back(arrival);
    }
  }
  // Fresh global run over the final resident set.
  PlacementInput final_input;
  final_input.topology = &topo;
  final_input.classes = resident;
  final_input.chains = chains;
  const PlacementPlan fresh = OptimizationEngine(options).place(final_input);
  ASSERT_TRUE(fresh.feasible);
  EXPECT_LE(placer.total_instances(),
            2 * fresh.total_instances() + 4);  // bounded drift
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineChurnSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace apple::core
