#include "core/dynamic_handler.h"

#include <gtest/gtest.h>

#include <limits>

#include "net/topologies.h"

namespace apple::core {
namespace {

using dataplane::HostVisit;
using dataplane::SubclassPlan;
using vnf::NfType;

SubclassPlan make_plan(traffic::ClassId cls, dataplane::SubclassId sub,
                       double weight, net::NodeId at,
                       std::vector<vnf::InstanceId> instances) {
  SubclassPlan plan;
  plan.class_id = cls;
  plan.subclass_id = sub;
  plan.weight = weight;
  HostVisit visit;
  visit.at_switch = at;
  visit.instances = std::move(instances);
  plan.itinerary = {visit};
  return plan;
}

class DynamicHandlerTest : public ::testing::Test {
 protected:
  DynamicHandlerTest()
      : topo_(net::make_line(3, 64.0)), orch_(topo_), sim_(0.01) {}

  // Launches a firewall at switch `v`, registers it with the simulation.
  vnf::InstanceId launch_fw(net::NodeId v) {
    const auto result = orch_.launch(NfType::kFirewall, v, /*now=*/-10.0);
    EXPECT_TRUE(result.ok());
    sim_.add_instance(result.instance, /*ready_at=*/0.0);
    return result.instance.id;
  }

  DynamicHandlerConfig config_with(double poll = 0.1) {
    DynamicHandlerConfig cfg;
    cfg.detector.poll_interval = poll;
    cfg.detector.overload_threshold = 0.9;
    cfg.detector.clear_threshold = 0.45;
    return cfg;
  }

  net::Topology topo_;
  orch::ResourceOrchestrator orch_;
  sim::FlowSimulation sim_;
};

TEST_F(DynamicHandlerTest, SpreadsLoadToSiblingSubclass) {
  const auto fw1 = launch_fw(1);
  const auto fw2 = launch_fw(2);
  sim_.set_class_rate(0, 1000.0);
  // Skewed split: fw1 carries 95% (950 Mbps > 900 capacity).
  sim_.install_class_plans(0, {make_plan(0, 0, 0.95, 1, {fw1}),
                               make_plan(0, 1, 0.05, 2, {fw2})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});

  sim_.step();
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().overload_events, 1u);
  EXPECT_GE(handler.metrics().rebalances, 1u);

  // After rebalance the hot sub-class holds half its weight.
  const auto& plans = sim_.plans_of(0);
  double hot_weight = 0.0, cold_weight = 0.0;
  for (const auto& plan : plans) {
    if (plan.subclass_id == 0) hot_weight += plan.weight;
    if (plan.subclass_id == 1) cold_weight += plan.weight;
  }
  EXPECT_NEAR(hot_weight, 0.475, 1e-9);
  EXPECT_GT(cold_weight, 0.05);
  sim_.step();
  EXPECT_LT(sim_.instance_offered_mbps(fw1), 900.0);
}

TEST_F(DynamicHandlerTest, LaunchesClickOsInstanceWhenSiblingsFull) {
  const auto fw1 = launch_fw(1);
  sim_.set_class_rate(0, 1200.0);  // single sub-class, 1200 > 900
  sim_.install_class_plans(0, {make_plan(0, 0, 1.0, 1, {fw1})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});

  sim_.step();
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().instances_launched, 1u);
  EXPECT_DOUBLE_EQ(handler.metrics().extra_cores_in_use, 4.0);  // one FW

  // The traffic shift waits for the ClickOS boot (~30 ms): run past it.
  sim_.run_until(0.10);
  handler.poll(sim_.now());
  sim_.step();
  // Load now split below capacity on both instances.
  EXPECT_LT(sim_.instance_offered_mbps(fw1), 900.0 + 1e-6);
  const auto ids = sim_.instance_ids();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(handler.has_active_failover());
}

TEST_F(DynamicHandlerTest, RollsBackAfterOverloadClears) {
  const auto fw1 = launch_fw(1);
  sim_.set_class_rate(0, 1200.0);
  sim_.install_class_plans(0, {make_plan(0, 0, 1.0, 1, {fw1})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});

  sim_.step();
  handler.poll(sim_.now());  // overload -> new instance
  ASSERT_EQ(handler.metrics().instances_launched, 1u);
  sim_.run_until(0.1);
  handler.poll(sim_.now());

  // Burst subsides far below the clear threshold.
  sim_.set_class_rate(0, 100.0);
  sim_.step();
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().clear_events, 1u);
  EXPECT_EQ(handler.metrics().instances_cancelled, 1u);
  EXPECT_FALSE(handler.has_active_failover());
  EXPECT_DOUBLE_EQ(handler.metrics().extra_cores_in_use, 0.0);
  // Original single-plan distribution restored.
  EXPECT_EQ(sim_.plans_of(0).size(), 1u);
  EXPECT_NEAR(sim_.plans_of(0)[0].weight, 1.0, 1e-12);
  EXPECT_EQ(sim_.instance_ids().size(), 1u);
}

TEST_F(DynamicHandlerTest, NoActionBelowThreshold) {
  const auto fw1 = launch_fw(1);
  sim_.set_class_rate(0, 500.0);
  sim_.install_class_plans(0, {make_plan(0, 0, 1.0, 1, {fw1})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});
  for (int i = 0; i < 10; ++i) {
    sim_.step();
    handler.poll(sim_.now());
  }
  EXPECT_EQ(handler.metrics().overload_events, 0u);
  EXPECT_EQ(handler.metrics().rebalances, 0u);
}

TEST_F(DynamicHandlerTest, RollbackRestoresDistributionVerbatim) {
  // Two sub-classes, both through the hot instance, with deliberately
  // asymmetric weights: rollback must restore every field of the saved
  // plans, not merely "one plan of weight 1".
  const auto fw1 = launch_fw(1);
  sim_.set_class_rate(0, 1200.0);
  const std::vector<SubclassPlan> original = {
      make_plan(0, 0, 0.6, 1, {fw1}), make_plan(0, 1, 0.4, 1, {fw1})};
  sim_.install_class_plans(0, original);
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});

  sim_.step();
  handler.poll(sim_.now());  // overload -> halve + launch replacement
  ASSERT_GE(handler.metrics().instances_launched, 1u);
  sim_.run_until(0.1);
  handler.poll(sim_.now());  // booted replacement's shift applies
  ASSERT_NE(sim_.plans_of(0).size(), original.size());

  sim_.set_class_rate(0, 100.0);
  sim_.step();
  handler.poll(sim_.now());  // clear -> rollback
  ASSERT_FALSE(handler.has_active_failover());

  const auto& restored = sim_.plans_of(0);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].class_id, original[i].class_id);
    EXPECT_EQ(restored[i].subclass_id, original[i].subclass_id);
    EXPECT_DOUBLE_EQ(restored[i].weight, original[i].weight);
    ASSERT_EQ(restored[i].itinerary.size(), original[i].itinerary.size());
    for (std::size_t v = 0; v < original[i].itinerary.size(); ++v) {
      EXPECT_EQ(restored[i].itinerary[v].at_switch,
                original[i].itinerary[v].at_switch);
      EXPECT_EQ(restored[i].itinerary[v].instances,
                original[i].itinerary[v].instances);
    }
  }
}

TEST_F(DynamicHandlerTest, PooledReplacementIsSharedAndCancelledExactlyOnce) {
  // Two classes, both through the same hot instance: one overload round
  // launches ONE replacement, pooled by both classes (two references).
  // When both roll back in the same clear, the pooled instance must be
  // cancelled exactly once — a broken refcount would double-cancel (two
  // cancel metrics) or leak it (fleet never shrinks).
  const auto fw1 = launch_fw(1);
  sim_.set_class_rate(0, 600.0);
  sim_.set_class_rate(1, 700.0);
  sim_.install_class_plans(0, {make_plan(0, 0, 1.0, 1, {fw1})});
  sim_.install_class_plans(1, {make_plan(1, 0, 1.0, 1, {fw1})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});
  handler.register_class(1, {NfType::kFirewall}, {0, 1, 2});

  sim_.step();  // fw1 offered 1300 > 810: one overload event
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().overload_events, 1u);
  // Pooling: both classes' leftover fits one replacement (300 + 350 Mbps
  // against a 810 Mbps fill target), so exactly one launch happens.
  EXPECT_EQ(handler.metrics().instances_launched, 1u);
  sim_.run_until(0.1);
  handler.poll(sim_.now());
  EXPECT_EQ(sim_.instance_ids().size(), 2u);  // fw1 + shared replacement

  sim_.set_class_rate(0, 50.0);
  sim_.set_class_rate(1, 50.0);
  sim_.step();
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().clear_events, 1u);
  EXPECT_FALSE(handler.has_active_failover());
  // Exactly one cancellation for the one shared launch.
  EXPECT_EQ(handler.metrics().instances_cancelled, 1u);
  EXPECT_DOUBLE_EQ(handler.metrics().extra_cores_in_use, 0.0);
  EXPECT_EQ(sim_.instance_ids().size(), 1u);
  ASSERT_EQ(sim_.plans_of(0).size(), 1u);
  EXPECT_DOUBLE_EQ(sim_.plans_of(0)[0].weight, 1.0);
  ASSERT_EQ(sim_.plans_of(1).size(), 1u);
  EXPECT_DOUBLE_EQ(sim_.plans_of(1)[0].weight, 1.0);
}

TEST_F(DynamicHandlerTest, RollbackIsPerClassNotGlobal) {
  // Independent failovers: class 0 overloads fw1, class 1 overloads fw2.
  // Clearing class 0's overload must roll back and cancel ONLY class 0's
  // replacement; class 1's failover stays active until its own clear.
  const auto fw1 = launch_fw(1);
  const auto fw2 = launch_fw(2);
  sim_.set_class_rate(0, 1200.0);
  sim_.set_class_rate(1, 1200.0);
  sim_.install_class_plans(0, {make_plan(0, 0, 1.0, 1, {fw1})});
  sim_.install_class_plans(1, {make_plan(1, 0, 1.0, 2, {fw2})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});
  handler.register_class(1, {NfType::kFirewall}, {0, 1, 2});

  sim_.step();
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().overload_events, 2u);
  ASSERT_EQ(handler.metrics().instances_launched, 2u);
  sim_.run_until(0.1);
  handler.poll(sim_.now());
  ASSERT_EQ(sim_.instance_ids().size(), 4u);

  // Only class 0's burst subsides.
  sim_.set_class_rate(0, 100.0);
  sim_.step();
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().clear_events, 1u);
  EXPECT_EQ(handler.metrics().instances_cancelled, 1u);
  // Class 0 restored verbatim; class 1's failover untouched.
  ASSERT_EQ(sim_.plans_of(0).size(), 1u);
  EXPECT_DOUBLE_EQ(sim_.plans_of(0)[0].weight, 1.0);
  EXPECT_TRUE(handler.has_active_failover());
  EXPECT_GT(sim_.plans_of(1).size(), 1u);
  EXPECT_EQ(sim_.instance_ids().size(), 3u);  // fw1, fw2, class 1's extra
  EXPECT_DOUBLE_EQ(handler.metrics().extra_cores_in_use, 4.0);

  sim_.set_class_rate(1, 100.0);
  sim_.step();
  handler.poll(sim_.now());
  EXPECT_FALSE(handler.has_active_failover());
  EXPECT_EQ(handler.metrics().instances_cancelled, 2u);
  EXPECT_EQ(sim_.instance_ids().size(), 2u);
  ASSERT_EQ(sim_.plans_of(1).size(), 1u);
  EXPECT_DOUBLE_EQ(sim_.plans_of(1)[0].weight, 1.0);
}

TEST_F(DynamicHandlerTest, ClearBeforeBootCancelsThePendingShift) {
  // Overload launches a replacement and queues the traffic shift for its
  // boot completion. The overload clears BEFORE the VM is up: the rollback
  // must also cancel the queued shift, or it would re-install failover
  // plans referencing a cancelled instance after the rollback.
  const auto fw1 = launch_fw(1);
  sim_.set_class_rate(0, 1200.0);
  sim_.install_class_plans(0, {make_plan(0, 0, 1.0, 1, {fw1})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});

  sim_.step();  // t = 0.01
  handler.poll(sim_.now());  // overload; replacement boots until ~0.04
  ASSERT_EQ(handler.metrics().instances_launched, 1u);

  sim_.set_class_rate(0, 100.0);
  sim_.step();  // t = 0.02, still before the replacement is ready
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().clear_events, 1u);
  EXPECT_EQ(handler.metrics().instances_cancelled, 1u);
  EXPECT_FALSE(handler.has_active_failover());

  // Run past the would-have-been boot completion: no zombie shift fires.
  sim_.run_until(0.2);
  handler.poll(sim_.now());
  ASSERT_EQ(sim_.plans_of(0).size(), 1u);
  EXPECT_DOUBLE_EQ(sim_.plans_of(0)[0].weight, 1.0);
  EXPECT_EQ(sim_.instance_ids().size(), 1u);
}

// Contract check (common/check.h): a non-positive or non-finite headroom
// target aborts at construction.
using DynamicHandlerDeathTest = DynamicHandlerTest;

TEST_F(DynamicHandlerDeathTest, RejectsNonPositiveHeadroom) {
  DynamicHandlerConfig cfg;
  cfg.headroom = 0.0;
  EXPECT_DEATH(DynamicHandler(sim_, orch_, cfg),
               "dynamic_handler.cc:[0-9]+: check failed:");
}

TEST_F(DynamicHandlerDeathTest, RejectsNonFiniteHeadroom) {
  DynamicHandlerConfig cfg;
  cfg.headroom = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(DynamicHandler(sim_, orch_, cfg),
               "dynamic_handler.cc:[0-9]+: check failed:");
}

TEST_F(DynamicHandlerTest, PeakExtraCoresTracksConcurrentFailovers) {
  const auto fw1 = launch_fw(1);
  const auto fw2 = launch_fw(2);
  sim_.set_class_rate(0, 1200.0);
  sim_.set_class_rate(1, 1200.0);
  sim_.install_class_plans(0, {make_plan(0, 0, 1.0, 1, {fw1})});
  sim_.install_class_plans(1, {make_plan(1, 0, 1.0, 2, {fw2})});
  DynamicHandler handler(sim_, orch_, config_with());
  handler.register_class(0, {NfType::kFirewall}, {0, 1, 2});
  handler.register_class(1, {NfType::kFirewall}, {0, 1, 2});
  sim_.step();
  handler.poll(sim_.now());
  EXPECT_EQ(handler.metrics().instances_launched, 2u);
  EXPECT_DOUBLE_EQ(handler.metrics().peak_extra_cores, 8.0);
}

}  // namespace
}  // namespace apple::core
