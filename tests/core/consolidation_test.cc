// Tests for the instance-consolidation local search and the capacity
// margin — the two refinements layered on the basic water-filling.
#include <gtest/gtest.h>

#include <random>

#include "core/optimization_engine.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "traffic/synthesis.h"

namespace apple::core {
namespace {

using vnf::NfType;

PlacementInput make_input(const net::Topology& topo,
                          const std::vector<traffic::TrafficClass>& classes,
                          const std::vector<vnf::PolicyChain>& chains) {
  PlacementInput input;
  input.topology = &topo;
  input.classes = classes;
  input.chains = chains;
  return input;
}

TEST(Consolidation, MergesFragmentedGroups) {
  // Two classes crossing at a hub, plus each has a private leg. A naive
  // fill can strand partial instances on the private legs; consolidation
  // should pool at the hub. The merged plan must still satisfy all
  // constraints and never exceed the naive one.
  const net::Topology topo = net::make_star(4, 64.0);
  const std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  std::vector<traffic::TrafficClass> classes(3);
  classes[0] = {0, 1, 2, {1, 0, 2}, 0, 300.0};
  classes[1] = {1, 3, 4, {3, 0, 4}, 0, 300.0};
  classes[2] = {2, 2, 3, {2, 0, 3}, 0, 200.0};
  const PlacementInput input = make_input(topo, classes, chains);
  EngineOptions options;
  options.strategy = PlacementStrategy::kGreedy;
  const PlacementPlan plan = OptimizationEngine(options).place(input);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(check_plan(input, plan), "");
  // 800 Mbps pooled: one hub firewall suffices.
  EXPECT_EQ(plan.total_instances(), 1u);
  EXPECT_EQ(plan.instances_of(0, NfType::kFirewall), 1u);
}

TEST(Consolidation, NeverBreaksConstraints) {
  // Randomized soak: consolidated plans must always pass check_plan.
  for (int seed = 1; seed <= 10; ++seed) {
    const net::Topology topo = net::make_grid(3, 3, 64.0);
    const net::AllPairsPaths routing(topo);
    const auto chain_span = vnf::default_policy_chains();
    std::vector<vnf::PolicyChain> chains(chain_span.begin(),
                                         chain_span.end());
    const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
        topo.num_nodes(),
        {.total_mbps = 4000.0, .seed = static_cast<std::uint64_t>(seed)});
    const auto classes = traffic::build_classes(
        topo, routing, tm, traffic::uniform_chain_assignment(chains.size()));
    const PlacementInput input = make_input(topo, classes, chains);
    EngineOptions options;
    options.strategy = PlacementStrategy::kGreedy;
    const PlacementPlan plan = OptimizationEngine(options).place(input);
    ASSERT_TRUE(plan.feasible) << "seed " << seed;
    EXPECT_EQ(check_plan(input, plan), "") << "seed " << seed;
  }
}

TEST(Consolidation, GreedyWithinFactorOfLpBound) {
  // On a mid-size instance the consolidated greedy should sit within a
  // modest factor of the LP lower bound (integrality gap included).
  const net::Topology topo = net::make_internet2();
  const net::AllPairsPaths routing(topo);
  const auto chain_span = vnf::default_policy_chains();
  std::vector<vnf::PolicyChain> chains(chain_span.begin(), chain_span.end());
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = 5000.0, .seed = 77});
  const auto classes = traffic::build_classes(
      topo, routing, tm, traffic::uniform_chain_assignment(chains.size()));
  const PlacementInput input = make_input(topo, classes, chains);

  EngineOptions greedy;
  greedy.strategy = PlacementStrategy::kGreedy;
  const PlacementPlan plan = OptimizationEngine(greedy).place(input);
  ASSERT_TRUE(plan.feasible);

  EngineOptions lp;
  lp.strategy = PlacementStrategy::kLpRound;
  const PlacementPlan rounded = OptimizationEngine(lp).place(input);
  ASSERT_TRUE(rounded.feasible);
  ASSERT_GT(rounded.lower_bound, 0.0);
  // The LP bound is loose on covering instances; 5x + 8 is a sanity rail
  // that catches gross regressions of the fill/consolidation stack.
  EXPECT_LE(static_cast<double>(plan.total_instances()),
            5.0 * rounded.lower_bound + 8.0);
}

TEST(CapacityMargin, LossKneeSitsAboveMeasuredCapacity) {
  for (const vnf::NfSpec& spec : vnf::nf_catalog()) {
    EXPECT_GT(spec.loss_knee_mbps(), spec.capacity_mbps);
    EXPECT_NEAR(spec.loss_knee_mbps() * vnf::kMeasuredCapacityMargin,
                spec.capacity_mbps, 1e-9);
  }
}

}  // namespace
}  // namespace apple::core
