#include "core/rule_generator.h"

#include <gtest/gtest.h>

#include <random>

#include "core/optimization_engine.h"
#include "net/topologies.h"
#include "traffic/synthesis.h"

namespace apple::core {
namespace {

using vnf::NfType;

struct Pipeline {
  const net::Topology* topo;
  std::vector<vnf::PolicyChain> chains;
  std::vector<traffic::TrafficClass> classes;
  PlacementInput input;
  PlacementPlan plan;
  InstanceInventory inventory;
  std::vector<std::vector<dataplane::SubclassPlan>> subclasses;

  Pipeline(const net::Topology& t,
           std::vector<vnf::PolicyChain> chain_catalog,
           std::vector<traffic::TrafficClass> cls)
      : topo(&t), chains(std::move(chain_catalog)), classes(std::move(cls)) {
    input.topology = topo;
    input.classes = classes;
    input.chains = chains;
    EngineOptions eopts;
    eopts.strategy = PlacementStrategy::kGreedy;
    plan = OptimizationEngine(eopts).place(input);
    EXPECT_TRUE(plan.feasible) << plan.infeasibility_reason;
    inventory = materialize_inventory(input, plan);
    subclasses = assign_subclasses(input, plan, inventory);
  }
};

hsa::PacketHeader flow_header(std::uint32_t salt) {
  hsa::PacketHeader h;
  h.src_ip = 0x0a000000u + salt * 2654435761u;
  h.dst_ip = 0xc0a80000u + salt;
  h.src_port = static_cast<std::uint16_t>(1024 + salt % 50000);
  h.dst_port = 80;
  h.proto = 6;
  return h;
}

TEST(RuleGenerator, InstallsWalkableDataPlane) {
  const net::Topology topo = net::make_line(4, 64.0);
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 3, {0, 1, 2, 3}, 0, 700.0};
  Pipeline p(topo, {{NfType::kFirewall, NfType::kIds}}, classes);

  dataplane::DataPlane dp(topo);
  const RuleGenerationReport report =
      RuleGenerator().install(p.input, p.subclasses, p.inventory, dp);
  EXPECT_GT(report.tcam_with_tagging, 0u);
  EXPECT_GT(report.vswitch_rules, 0u);

  const auto result = dp.walk(0, flow_header(1));
  ASSERT_TRUE(result.delivered) << result.error;
  EXPECT_EQ(dp.traversed_types(result.packet),
            (std::vector<NfType>{NfType::kFirewall, NfType::kIds}));
}

TEST(RuleGenerator, TaggingBeatsNoTagging) {
  // Long path, chain at downstream hosts: classification at every host
  // switch (no tagging) costs strictly more than ingress-only (tagging).
  const net::Topology topo = net::make_line(6, 64.0);
  std::vector<traffic::TrafficClass> classes(2);
  classes[0] = {0, 0, 5, {0, 1, 2, 3, 4, 5}, 0, 1100.0};
  classes[1] = {1, 1, 5, {1, 2, 3, 4, 5}, 0, 900.0};
  Pipeline p(topo, {{NfType::kFirewall, NfType::kNat, NfType::kIds}},
             classes);
  const RuleGenerationReport report =
      RuleGenerator().account(p.input, p.subclasses);
  EXPECT_GT(report.tcam_without_tagging, report.tcam_with_tagging);
  EXPECT_GT(report.tcam_reduction_ratio(), 1.0);
}

TEST(RuleGenerator, AccountRejectsMismatchedSizes) {
  const net::Topology topo = net::make_line(3, 64.0);
  std::vector<traffic::TrafficClass> classes(1);
  classes[0] = {0, 0, 2, {0, 1, 2}, 0, 100.0};
  Pipeline p(topo, {{NfType::kFirewall}}, classes);
  auto wrong = p.subclasses;
  wrong.emplace_back();
  EXPECT_THROW(RuleGenerator().account(p.input, wrong),
               std::invalid_argument);
}

// The headline property test: on a realistic topology with the full chain
// catalog, every class's packets must traverse their policy chain in order
// (policy enforcement) on their original forwarding path (interference
// freedom).
class EndToEndEnforcement : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndEnforcement, EveryClassEnforcedOnItsOwnPath) {
  const net::Topology topo = net::make_internet2();
  const net::AllPairsPaths routing(topo);
  const auto chain_span = vnf::default_policy_chains();
  std::vector<vnf::PolicyChain> chains(chain_span.begin(), chain_span.end());

  traffic::GravityModelConfig gcfg;
  gcfg.total_mbps = 10000.0;
  gcfg.seed = static_cast<std::uint64_t>(GetParam());
  const traffic::TrafficMatrix tm =
      traffic::make_gravity_matrix(topo.num_nodes(), gcfg);
  const auto classes = traffic::build_classes(
      topo, routing, tm, traffic::uniform_chain_assignment(chains.size()));

  Pipeline p(topo, chains, classes);
  EXPECT_EQ(check_plan(p.input, p.plan), "");

  dataplane::DataPlane dp(topo);
  RuleGenerator().install(p.input, p.subclasses, p.inventory, dp);

  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> salt(0, 1u << 30);
  for (const traffic::TrafficClass& cls : p.classes) {
    // Several flows per class to exercise different sub-classes.
    for (int f = 0; f < 3; ++f) {
      const auto result = dp.walk(cls.id, flow_header(salt(rng)));
      ASSERT_TRUE(result.delivered)
          << "class " << cls.id << ": " << result.error;
      // Policy enforcement: traversed NF types equal the chain, in order.
      EXPECT_EQ(dp.traversed_types(result.packet), chains[cls.chain_id])
          << "class " << cls.id;
      // Interference freedom: switches visited = original path.
      EXPECT_EQ(result.packet.switch_trace, cls.path) << "class " << cls.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndEnforcement, ::testing::Range(1, 5));

}  // namespace
}  // namespace apple::core
