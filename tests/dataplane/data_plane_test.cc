#include "dataplane/data_plane.h"

#include <gtest/gtest.h>

#include <random>

#include "net/topologies.h"

namespace apple::dataplane {
namespace {

using vnf::NfType;

traffic::TrafficClass make_class(traffic::ClassId id, net::Path path,
                                 traffic::ChainId chain = 0,
                                 double rate = 100.0) {
  traffic::TrafficClass cls;
  cls.id = id;
  cls.src = path.front();
  cls.dst = path.back();
  cls.path = std::move(path);
  cls.chain_id = chain;
  cls.rate_mbps = rate;
  return cls;
}

class DataPlaneTest : public ::testing::Test {
 protected:
  DataPlaneTest() : topo_(net::make_line(4)), dp_(topo_) {
    // Instances: FW at switch 1, IDS at switch 2, spare FW at switch 2.
    dp_.register_instance({/*id=*/1, NfType::kFirewall, /*host=*/1, 900.0});
    dp_.register_instance({/*id=*/2, NfType::kIds, /*host=*/2, 600.0});
    dp_.register_instance({/*id=*/3, NfType::kFirewall, /*host=*/2, 900.0});
  }

  hsa::PacketHeader header(std::uint32_t salt = 0) const {
    hsa::PacketHeader h;
    h.src_ip = 0x0a000001 + salt;
    h.dst_ip = 0x0a000002;
    h.src_port = 1000;
    h.dst_port = 80;
    h.proto = 6;
    return h;
  }

  net::Topology topo_;
  DataPlane dp_;
};

TEST_F(DataPlaneTest, WalksChainInOrder) {
  SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {1}}, {2, {2}}};  // FW@1 then IDS@2
  dp_.install_class(make_class(0, {0, 1, 2, 3}), {plan});

  const auto result = dp_.walk(0, header());
  ASSERT_TRUE(result.delivered) << result.error;
  EXPECT_EQ(result.packet.nf_trace, (std::vector<vnf::InstanceId>{1, 2}));
  EXPECT_EQ(dp_.traversed_types(result.packet),
            (std::vector<NfType>{NfType::kFirewall, NfType::kIds}));
  // Interference freedom: switch trace equals the original path.
  EXPECT_EQ(result.packet.switch_trace, (net::Path{0, 1, 2, 3}));
  EXPECT_EQ(result.packet.host_tag, kHostTagFin);
}

TEST_F(DataPlaneTest, MultipleInstancesAtOneHost) {
  SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{2, {3, 2}}};  // FW then IDS, both at switch 2's host
  dp_.install_class(make_class(0, {0, 1, 2, 3}), {plan});
  const auto result = dp_.walk(0, header());
  ASSERT_TRUE(result.delivered) << result.error;
  EXPECT_EQ(dp_.traversed_types(result.packet),
            (std::vector<NfType>{NfType::kFirewall, NfType::kIds}));
}

TEST_F(DataPlaneTest, EmptyItineraryDeliversUntouched) {
  SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  dp_.install_class(make_class(0, {0, 1, 2}), {plan});
  const auto result = dp_.walk(0, header());
  ASSERT_TRUE(result.delivered);
  EXPECT_TRUE(result.packet.nf_trace.empty());
  EXPECT_EQ(result.packet.host_tag, kHostTagFin);
}

TEST_F(DataPlaneTest, SubclassSplitFollowsWeights) {
  SubclassPlan a, b;
  a.class_id = b.class_id = 0;
  a.subclass_id = 0;
  b.subclass_id = 1;
  a.weight = 0.5;
  b.weight = 0.5;
  a.itinerary = {{1, {1}}};
  b.itinerary = {{2, {3}}};
  dp_.install_class(make_class(0, {0, 1, 2, 3}), {a, b});

  int to_a = 0;
  const int kFlows = 4000;
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint32_t> salt(0, 1u << 30);
  for (int i = 0; i < kFlows; ++i) {
    const auto& plan = dp_.subclass_for(0, header(salt(rng)));
    if (plan.subclass_id == 0) ++to_a;
  }
  // Consistent hash splits flows ~50/50 (Sec. V-A).
  EXPECT_NEAR(static_cast<double>(to_a) / kFlows, 0.5, 0.05);
}

TEST_F(DataPlaneTest, SubclassSelectionIsStablePerFlow) {
  SubclassPlan a, b;
  a.class_id = b.class_id = 0;
  a.subclass_id = 0;
  b.subclass_id = 1;
  a.weight = 0.3;
  b.weight = 0.7;
  a.itinerary = {{1, {1}}};
  b.itinerary = {{2, {3}}};
  dp_.install_class(make_class(0, {0, 1, 2, 3}), {a, b});
  const auto h = header(77);
  const SubclassId first = dp_.subclass_for(0, h).subclass_id;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dp_.subclass_for(0, h).subclass_id, first);
  }
}

TEST_F(DataPlaneTest, UpdateClassSwapsPlans) {
  SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {1}}};
  dp_.install_class(make_class(0, {0, 1, 2, 3}), {plan});

  SubclassPlan moved = plan;
  moved.itinerary = {{2, {3}}};
  dp_.update_class(0, {moved});
  const auto result = dp_.walk(0, header());
  ASSERT_TRUE(result.delivered);
  EXPECT_EQ(result.packet.nf_trace, (std::vector<vnf::InstanceId>{3}));
}

TEST_F(DataPlaneTest, ValidationRejectsBadPlans) {
  const auto cls = make_class(0, {0, 1, 2, 3});
  SubclassPlan plan;
  plan.class_id = 0;
  plan.weight = 1.0;

  // Weights must sum to 1.
  SubclassPlan half = plan;
  half.weight = 0.5;
  EXPECT_THROW(dp_.install_class(cls, {half}), std::invalid_argument);

  // Off-path visit.
  SubclassPlan off = plan;
  off.itinerary = {{9, {1}}};
  EXPECT_THROW(dp_.install_class(cls, {off}), std::invalid_argument);

  // Out-of-order visits (switch 2 before switch 1).
  SubclassPlan unordered = plan;
  unordered.itinerary = {{2, {2}}, {1, {1}}};
  EXPECT_THROW(dp_.install_class(cls, {unordered}), std::invalid_argument);

  // Empty host visit.
  SubclassPlan empty_visit = plan;
  empty_visit.itinerary = {{1, {}}};
  EXPECT_THROW(dp_.install_class(cls, {empty_visit}), std::invalid_argument);

  // No plans at all.
  EXPECT_THROW(dp_.install_class(cls, {}), std::invalid_argument);

  // Negative weight.
  SubclassPlan neg = plan;
  neg.weight = -1.0;
  SubclassPlan comp = plan;
  comp.weight = 2.0;
  EXPECT_THROW(dp_.install_class(cls, {neg, comp}), std::invalid_argument);

  // Update of unknown class.
  EXPECT_THROW(dp_.update_class(42, {plan}), std::invalid_argument);
}

TEST_F(DataPlaneTest, WalkOnUnknownClassFails) {
  const auto result = dp_.walk(99, header());
  EXPECT_FALSE(result.delivered);
  EXPECT_FALSE(result.error.empty());
}

TEST_F(DataPlaneTest, RemoveClassDeletesRules) {
  SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {1}}};
  dp_.install_class(make_class(0, {0, 1, 2, 3}), {plan});
  ASSERT_TRUE(dp_.has_class(0));
  EXPECT_EQ(dp_.num_classes(), 1u);

  EXPECT_TRUE(dp_.remove_class(0));
  EXPECT_FALSE(dp_.has_class(0));
  EXPECT_EQ(dp_.num_classes(), 0u);
  EXPECT_FALSE(dp_.remove_class(0));  // second removal is a no-op
  EXPECT_FALSE(dp_.walk(0, header()).delivered);
}

TEST_F(DataPlaneTest, UnregisterInstanceFailsWalksThroughIt) {
  SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {1}}};
  dp_.install_class(make_class(0, {0, 1, 2, 3}), {plan});
  ASSERT_TRUE(dp_.has_instance(1));

  dp_.unregister_instance(1);
  EXPECT_FALSE(dp_.has_instance(1));
  EXPECT_EQ(dp_.num_instances(), 2u);
  // The class's rules now dangle: the walk reports the inconsistency
  // instead of silently skipping the retired instance.
  const auto result = dp_.walk(0, header());
  EXPECT_FALSE(result.delivered);
  EXPECT_FALSE(result.error.empty());
  dp_.unregister_instance(1);  // unknown id: no-op
  EXPECT_EQ(dp_.num_instances(), 2u);
}

TEST_F(DataPlaneTest, ClassIdsAreSorted) {
  SubclassPlan plan;
  plan.class_id = 7;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {1}}};
  dp_.install_class(make_class(7, {0, 1, 2, 3}), {plan});
  plan.class_id = 3;
  dp_.install_class(make_class(3, {0, 1, 2, 3}), {plan});
  EXPECT_EQ(dp_.class_ids(), (std::vector<traffic::ClassId>{3, 7}));
}

TEST_F(DataPlaneTest, RevisitingSameHostTwiceIsRejected) {
  // A second visit to switch 1 after switch 2 cannot appear on a simple
  // path; validation must reject it (packets never traverse an instance
  // twice, Sec. V-B).
  SubclassPlan plan;
  plan.class_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {1}}, {2, {2}}, {1, {1}}};
  EXPECT_THROW(dp_.install_class(make_class(0, {0, 1, 2, 3}), {plan}),
               std::invalid_argument);
}

TEST_F(DataPlaneTest, RuleFaultHookFailsInstallsWithoutLeavingState) {
  SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {1}}};

  int consulted = 0;
  dp_.set_rule_fault_hook([&](traffic::ClassId cls) {
    ++consulted;
    return cls == 0;  // fail class 0 only
  });
  EXPECT_THROW(dp_.install_class(make_class(0, {0, 1, 2, 3}), {plan}),
               RuleInstallError);
  EXPECT_FALSE(dp_.has_class(0));
  EXPECT_EQ(dp_.num_classes(), 0u);
  EXPECT_EQ(consulted, 1);

  plan.class_id = 5;
  dp_.install_class(make_class(5, {0, 1, 2, 3}), {plan});  // other ids pass
  EXPECT_TRUE(dp_.has_class(5));

  // update_class goes through the same hook; the old plans survive.
  dp_.set_rule_fault_hook([](traffic::ClassId) { return true; });
  SubclassPlan updated = plan;
  updated.itinerary = {{2, {2}}};
  EXPECT_THROW(dp_.update_class(5, {updated}), RuleInstallError);
  ASSERT_EQ(dp_.plans_of(5).size(), 1u);
  EXPECT_EQ(dp_.plans_of(5)[0].itinerary[0].at_switch, 1u);

  dp_.set_rule_fault_hook(nullptr);  // cleared: installs are clean again
  EXPECT_NO_THROW(dp_.update_class(5, {updated}));
  EXPECT_EQ(dp_.plans_of(5)[0].itinerary[0].at_switch, 2u);
}

TEST_F(DataPlaneTest, InstanceLookupReturnsRegisteredFacts) {
  const auto fw = dp_.instance(1);
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(fw->type, NfType::kFirewall);
  EXPECT_EQ(fw->host_switch, 1u);
  EXPECT_DOUBLE_EQ(fw->capacity_mbps, 900.0);
  EXPECT_FALSE(dp_.instance(999).has_value());
}

}  // namespace
}  // namespace apple::dataplane
