#include "dataplane/rule_table.h"

#include <gtest/gtest.h>

namespace apple::dataplane {
namespace {

SubclassPlan make_plan(traffic::ClassId cls, SubclassId sub, double weight,
                       std::vector<HostVisit> itinerary,
                       std::size_t prefix_rules = 1) {
  SubclassPlan plan;
  plan.class_id = cls;
  plan.subclass_id = sub;
  plan.weight = weight;
  plan.itinerary = std::move(itinerary);
  plan.classifier_prefix_rules = prefix_rules;
  return plan;
}

TEST(TcamAccountant, TaggedSubclassUsesIngressClassifierOnly) {
  TcamAccountant acct(4);
  // Sub-class visits hosts at switches 1 and 3; ingress is 0.
  const SubclassPlan plan =
      make_plan(0, 0, 1.0, {{1, {10}}, {3, {11}}}, /*prefix_rules=*/2);
  acct.add_tagged_subclass(plan, 0);
  const auto usage = acct.usage();
  EXPECT_EQ(usage[0].classification, 2u);
  EXPECT_EQ(usage[0].host_match, 0u);
  EXPECT_EQ(usage[1].host_match, 1u);
  EXPECT_EQ(usage[1].classification, 0u);
  EXPECT_EQ(usage[3].host_match, 1u);
  EXPECT_EQ(usage[2].total(), 0u);  // untouched transit switch
}

TEST(TcamAccountant, UntaggedSubclassClassifiesAlongWholePath) {
  TcamAccountant tagged(4), untagged(4);
  const SubclassPlan plan =
      make_plan(0, 0, 1.0, {{1, {10}}, {3, {11}}}, /*prefix_rules=*/4);
  tagged.add_tagged_subclass(plan, 0);
  const std::vector<net::NodeId> path{0, 1, 2, 3};
  untagged.add_untagged_subclass(plan, path);
  // Tagging: 4 (ingress) + 2 host-match + pass-by entries.
  // No tagging: 4 classifier entries at EVERY switch on the path.
  EXPECT_LT(tagged.total(), untagged.total());
  const auto u = untagged.usage();
  for (const net::NodeId v : path) {
    EXPECT_EQ(u[v].classification, 4u) << v;
  }
}

TEST(TcamAccountant, HostMatchDeduplicatedAcrossSubclasses) {
  TcamAccountant acct(3);
  acct.add_tagged_subclass(make_plan(0, 0, 1.0, {{1, {10}}}), 0);
  acct.add_tagged_subclass(make_plan(1, 0, 1.0, {{1, {11}}}), 2);
  const auto usage = acct.usage();
  // Both sub-classes divert at switch 1's host: one host-match entry.
  EXPECT_EQ(usage[1].host_match, 1u);
}

TEST(TcamAccountant, PassByOnlyWhereRulesExist) {
  TcamAccountant acct(3);
  acct.add_tagged_subclass(make_plan(0, 0, 1.0, {{1, {10}}}), 0);
  const auto usage = acct.usage();
  EXPECT_EQ(usage[0].pass_by, 1u);
  EXPECT_EQ(usage[1].pass_by, 1u);
  EXPECT_EQ(usage[2].pass_by, 0u);
}

TEST(TcamAccountant, CrossProductWithoutPipelining) {
  TcamAccountant pipelined(2), flat(2);
  flat.set_pipelined(false);
  // Switch 0 is both ingress (2 prefix rules) and a host stop.
  const SubclassPlan plan =
      make_plan(0, 0, 1.0, {{0, {10}}}, /*prefix_rules=*/2);
  pipelined.add_tagged_subclass(plan, 0);
  flat.add_tagged_subclass(plan, 0);
  EXPECT_GT(flat.total(), pipelined.total());
}

TEST(TcamAccountant, RejectsOutOfRangeSwitch) {
  TcamAccountant acct(2);
  EXPECT_THROW(
      acct.add_tagged_subclass(make_plan(0, 0, 1.0, {{5, {10}}}), 0),
      std::out_of_range);
  EXPECT_THROW(acct.add_tagged_subclass(make_plan(0, 0, 1.0, {}), 9),
               std::out_of_range);
  const std::vector<net::NodeId> bad_path{0, 9};
  EXPECT_THROW(
      acct.add_untagged_subclass(make_plan(0, 0, 1.0, {}), bad_path),
      std::out_of_range);
}

TEST(TcamAccountant, RemoveTaggedSubclassRestoresState) {
  TcamAccountant acct(4);
  const SubclassPlan a =
      make_plan(0, 0, 0.5, {{1, {10}}, {3, {11}}}, /*prefix_rules=*/2);
  const SubclassPlan b = make_plan(1, 0, 1.0, {{1, {12}}});
  acct.add_tagged_subclass(a, 0);
  acct.add_tagged_subclass(b, 2);
  acct.remove_tagged_subclass(a, 0);
  // Switch 1's host-match survives: sub-class b still diverts there.
  const auto usage = acct.usage();
  EXPECT_EQ(usage[0].total(), 0u);
  EXPECT_EQ(usage[1].host_match, 1u);
  EXPECT_EQ(usage[3].total(), 0u);
  acct.remove_tagged_subclass(b, 2);
  EXPECT_EQ(acct.total(), 0u);
}

TEST(TcamAccountant, RemoveUntaggedSubclassRestoresState) {
  TcamAccountant acct(4);
  const SubclassPlan plan =
      make_plan(0, 0, 1.0, {{1, {10}}}, /*prefix_rules=*/3);
  const std::vector<net::NodeId> path{0, 1, 2};
  acct.add_untagged_subclass(plan, path);
  acct.remove_untagged_subclass(plan, path);
  EXPECT_EQ(acct.total(), 0u);
}

TEST(VswitchRules, OneEntryPerStep) {
  // Two host visits with 2 and 1 instances: (2+1) + (1+1) = 5 entries.
  const SubclassPlan plan =
      make_plan(0, 0, 1.0, {{1, {10, 11}}, {3, {12}}});
  EXPECT_EQ(vswitch_rules_for(plan), 5u);
  EXPECT_EQ(vswitch_rules_for(make_plan(0, 0, 1.0, {})), 0u);
}

TEST(HostTags, RoundTrip) {
  EXPECT_EQ(switch_of_host_tag(host_tag_for(7)), 7u);
  EXPECT_NE(host_tag_for(0), kHostTagEmpty);
  EXPECT_NE(host_tag_for(0), kHostTagFin);
}

}  // namespace
}  // namespace apple::dataplane
