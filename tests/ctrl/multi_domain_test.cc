#include "ctrl/multi_domain.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/epoch_pipeline.h"
#include "exec/thread_pool.h"
#include "fault/recovery_monitor.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "traffic/flow_classes.h"
#include "traffic/synthesis.h"
#include "vnf/nf_types.h"

namespace apple::ctrl {
namespace {

using vnf::NfType;

// Two triangles {0,1,2} and {3,4,5} joined by the cut link 2-3; every
// switch has an APPLE host big enough for any single instance.
net::Topology two_triangles(double host_cores = 16.0) {
  net::Topology topo("two-triangles");
  for (int i = 0; i < 6; ++i) {
    topo.add_node("n" + std::to_string(i), host_cores);
  }
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(0, 2);
  topo.add_link(3, 4);
  topo.add_link(4, 5);
  topo.add_link(3, 5);
  topo.add_link(2, 3);  // the cut
  return topo;
}

DomainPartition triangle_partition() {
  DomainPartition part;
  part.num_domains = 2;
  part.domain_of = {0, 0, 0, 1, 1, 1};
  part.members = {{0, 1, 2}, {3, 4, 5}};
  part.cut_links = {6};
  return part;
}

// One single-NF chain per class, all distinct types: no instance pooling is
// possible across classes, so the multi-domain objective must equal the
// single-controller objective exactly.
std::vector<vnf::PolicyChain> distinct_chains() {
  return {{NfType::kFirewall}, {NfType::kNat}, {NfType::kIds}};
}

traffic::TrafficClass make_class(const net::AllPairsPaths& routing,
                                 net::NodeId src, net::NodeId dst,
                                 traffic::ChainId chain, double rate) {
  traffic::TrafficClass cls;
  cls.src = src;
  cls.dst = dst;
  cls.chain_id = chain;
  cls.rate_mbps = rate;
  cls.path = *routing.path(src, dst);
  return cls;
}

// A class per domain plus one whose path spans the cut (homed at domain 0
// by the ingress rule).
std::vector<traffic::TrafficClass> triangle_classes(
    const net::AllPairsPaths& routing) {
  return {
      make_class(routing, 0, 2, 0, 500.0),  // domain 0 local, firewall
      make_class(routing, 3, 5, 1, 500.0),  // domain 1 local, NAT
      make_class(routing, 1, 4, 2, 500.0),  // crosses the cut, IDS
  };
}

void expect_zero_violations(const MultiDomainController& controller,
                            fault::RecoveryMonitor& monitor) {
  for (std::size_t d = 0; d < controller.num_domains(); ++d) {
    const auto probes = controller.probes_for_domain(d);
    monitor.verify_policies(controller.domain_dataplane(d), probes);
  }
  EXPECT_EQ(monitor.policy_violations(), 0u);
}

TEST(MultiDomainTest, ReconciledPlanMatchesSingleControllerObjective) {
  const net::Topology topo = two_triangles();
  const auto chains = distinct_chains();
  const net::AllPairsPaths routing(topo);
  const auto classes = triangle_classes(routing);

  const core::EpochPipeline pipeline;
  const core::Epoch single = pipeline.run(topo, chains, classes);

  MultiDomainController controller(topo, chains, triangle_partition(),
                                   DomainConfig{2});
  const ApplyReport report = controller.initialize(classes);

  EXPECT_EQ(controller.total_classes(), classes.size());
  EXPECT_EQ(controller.total_instances(), single.plan.total_instances());
  EXPECT_EQ(report.conflicts, 0u);
  // The cross-cut class is homed at domain 0 and counted as cross-domain.
  EXPECT_EQ(controller.domain_status(0).classes, 2u);
  EXPECT_EQ(controller.domain_status(0).cross_domain_classes, 1u);
  EXPECT_EQ(controller.domain_status(1).classes, 1u);
}

TEST(MultiDomainTest, NoWrongChainServedMidReconcile) {
  const net::Topology topo = two_triangles();
  const auto chains = distinct_chains();
  const net::AllPairsPaths routing(topo);

  MultiDomainController controller(topo, chains, triangle_partition(),
                                   DomainConfig{2});
  fault::RecoveryMonitor monitor;
  std::vector<std::string> phases;
  controller.set_phase_observer([&](std::string_view phase) {
    phases.emplace_back(phase);
    // Whatever phase the commit is in, the serving data planes must only
    // ever answer probes with the exact policied chain.
    expect_zero_violations(controller, monitor);
  });

  controller.initialize(triangle_classes(routing));
  ASSERT_EQ(phases, (std::vector<std::string>{"proposed", "reconciled",
                                              "committed"}));

  // An admission batch touching both domains: a new cross-cut class plus a
  // rate change on an existing one.
  PolicyBatch batch;
  batch.per_domain.resize(2);
  PolicyRequest add;
  add.kind = PolicyRequest::Kind::kAdd;
  add.src = 2;
  add.dst = 5;
  add.chain_id = 0;
  add.rate_mbps = 300.0;
  batch.per_domain[0].push_back(add);
  PolicyRequest modify;
  modify.kind = PolicyRequest::Kind::kModify;
  modify.src = 3;
  modify.dst = 5;
  modify.chain_id = 1;
  modify.rate_mbps = 800.0;
  batch.per_domain[1].push_back(modify);
  batch.accepted = 2;

  phases.clear();
  const ApplyReport report = controller.apply(batch);
  ASSERT_EQ(phases, (std::vector<std::string>{"proposed", "reconciled",
                                              "committed"}));
  EXPECT_EQ(report.requests_applied, 2u);
  EXPECT_EQ(report.domains_dirty, 2u);
  EXPECT_EQ(controller.total_classes(), 4u);

  // Post-commit: the new state serves, still violation-free, and probes
  // actually traverse chains (they are delivered, not blackholed).
  expect_zero_violations(controller, monitor);
  const fault::RecoveryReport recovery = monitor.report();
  EXPECT_GT(recovery.policy_probes, 0u);
  EXPECT_EQ(recovery.policy_violations, 0u);
  EXPECT_EQ(recovery.blackholed_probes, 0u);
}

TEST(MultiDomainTest, ByteIdenticalAcrossWorkerCounts) {
  const net::Topology topo = net::make_internet2();
  const auto chains = vnf::scaled_policy_chains(8);
  const net::AllPairsPaths routing(topo);
  const traffic::TrafficMatrix tm = traffic::make_gravity_matrix(
      topo.num_nodes(), {.total_mbps = 16000.0});
  const auto assignment = traffic::uniform_chain_assignment(8, 7, 0.5);
  const auto classes =
      traffic::build_classes(topo, routing, tm, assignment);

  // The same bring-up plus one batch, at several pool widths: every
  // artifact must be byte-identical (the determinism contract).
  PolicyBatch batch;
  batch.per_domain.resize(3);
  for (net::NodeId src = 0; src < 6; ++src) {
    PolicyRequest r;
    r.kind = src % 2 == 0 ? PolicyRequest::Kind::kAdd
                          : PolicyRequest::Kind::kRemove;
    r.src = src;
    r.dst = static_cast<net::NodeId>(src + 3);
    r.chain_id = src % 8;
    r.rate_mbps = 120.0 + 10.0 * src;
    batch.accepted += 1;
    batch.per_domain[0].push_back(r);  // re-bucketed below
  }
  // Route requests to their true home domains.
  const DomainPartition part = partition_topology(topo, 3, 11);
  PolicyBatch routed;
  routed.per_domain.resize(3);
  routed.accepted = batch.accepted;
  for (const PolicyRequest& r : batch.per_domain[0]) {
    routed.per_domain[part.home_domain(r.src)].push_back(r);
  }

  std::vector<std::uint64_t> fingerprints;
  for (const std::size_t workers : {0u, 1u, 3u, 7u}) {
    exec::ThreadPool pool(workers);
    MultiDomainController controller(topo, chains, DomainConfig{3, 11},
                                     core::PipelineOptions{}, &pool);
    controller.initialize(classes);
    controller.apply(routed);
    fingerprints.push_back(controller.fingerprint());
  }
  for (std::size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[0], fingerprints[i]) << "worker set " << i;
  }
}

// Conflict fixture: a line 0-1-2-3-4-5 cut into {0,1,2} | {3,4,5} where
// the only hosts sit at nodes 3 (4 cores = one firewall) and 5 (4 cores).
// Domain 0's cross-cut class is forced onto node 3; a class added to
// domain 1 later prefers node 3 too (popularity tie breaks toward the
// earliest path position), so its proposal always collides.
struct ConflictFixture {
  net::Topology topo{"conflict-line"};
  std::vector<vnf::PolicyChain> chains{{NfType::kFirewall}};
  DomainPartition part;

  ConflictFixture() {
    for (int i = 0; i < 6; ++i) {
      const double cores = (i == 3 || i == 5) ? 4.0 : 0.0;
      topo.add_node("n" + std::to_string(i), cores);
    }
    for (net::NodeId v = 0; v + 1 < 6; ++v) topo.add_link(v, v + 1);
    part.num_domains = 2;
    part.domain_of = {0, 0, 0, 1, 1, 1};
    part.members = {{0, 1, 2}, {3, 4, 5}};
    part.cut_links = {2};
  }

  PolicyBatch conflicting_batch() const {
    PolicyBatch batch;
    batch.per_domain.resize(2);
    PolicyRequest add;
    add.kind = PolicyRequest::Kind::kAdd;
    add.src = 3;
    add.dst = 5;
    add.chain_id = 0;
    add.rate_mbps = 800.0;
    batch.per_domain[1].push_back(add);
    batch.accepted = 1;
    return batch;
  }
};

TEST(MultiDomainTest, ConflictIsResolvedOverResidualBudgets) {
  ConflictFixture f;
  DomainConfig config{2};
  config.conflict_policy = ConflictPolicy::kResolve;
  MultiDomainController controller(f.topo, f.chains, f.part, config);
  const net::AllPairsPaths routing(f.topo);
  // The cross-cut class saturates node 3 (its only on-path host).
  controller.initialize({make_class(routing, 2, 3, 0, 800.0)});
  ASSERT_EQ(controller.domain_epoch(0).plan.instances_of(3, NfType::kFirewall),
            1u);

  const ApplyReport report = controller.apply(f.conflicting_batch());
  EXPECT_EQ(report.conflicts, 1u);
  EXPECT_EQ(report.rejected_domains, 0u);
  EXPECT_EQ(report.requests_applied, 1u);
  // The re-solve against the residual ledger lands the instance at node 5.
  const core::PlacementPlan& plan = controller.domain_epoch(1).plan;
  EXPECT_EQ(plan.instances_of(3, NfType::kFirewall), 0u);
  EXPECT_EQ(plan.instances_of(5, NfType::kFirewall), 1u);
  EXPECT_EQ(controller.domain_status(1).conflicts, 1u);

  // Combined load respects every node budget.
  std::vector<double> used(f.topo.num_nodes(), 0.0);
  for (std::size_t d = 0; d < 2; ++d) {
    const core::PlacementPlan& p = controller.domain_epoch(d).plan;
    for (net::NodeId v = 0; v < f.topo.num_nodes(); ++v) {
      for (std::size_t t = 0; t < vnf::kNumNfTypes; ++t) {
        used[v] += p.instance_count[v][t] *
                   vnf::spec_of(static_cast<NfType>(t)).cores_required;
      }
    }
  }
  for (net::NodeId v = 0; v < f.topo.num_nodes(); ++v) {
    EXPECT_LE(used[v], f.topo.node(v).host_cores + 1e-9) << "node " << v;
  }

  fault::RecoveryMonitor monitor;
  expect_zero_violations(controller, monitor);
}

TEST(MultiDomainTest, ConflictRejectKeepsPreviousEpochServing) {
  ConflictFixture f;
  DomainConfig config{2};
  config.conflict_policy = ConflictPolicy::kReject;
  MultiDomainController controller(f.topo, f.chains, f.part, config);
  const net::AllPairsPaths routing(f.topo);
  controller.initialize({make_class(routing, 2, 3, 0, 800.0)});

  const ApplyReport report = controller.apply(f.conflicting_batch());
  EXPECT_EQ(report.conflicts, 1u);
  EXPECT_EQ(report.rejected_domains, 1u);
  // Domain 1 was bounced: it still serves its previous (empty) epoch.
  EXPECT_EQ(controller.domain_epoch(1).classes.size(), 0u);
  EXPECT_EQ(controller.domain_status(1).epochs, 1u);
  EXPECT_EQ(controller.total_instances(), 1u);

  fault::RecoveryMonitor monitor;
  expect_zero_violations(controller, monitor);
}

TEST(MultiDomainTest, ApplyEmptyBatchLeavesEveryDomainClean) {
  const net::Topology topo = two_triangles();
  const auto chains = distinct_chains();
  const net::AllPairsPaths routing(topo);
  MultiDomainController controller(topo, chains, triangle_partition(),
                                   DomainConfig{2});
  controller.initialize(triangle_classes(routing));
  const std::uint64_t before = controller.fingerprint();

  PolicyBatch batch;
  batch.per_domain.resize(2);
  const ApplyReport report = controller.apply(batch);
  EXPECT_EQ(report.domains_dirty, 0u);
  EXPECT_EQ(report.domains_clean, 2u);
  EXPECT_EQ(controller.fingerprint(), before);
}

}  // namespace
}  // namespace apple::ctrl
