#include "ctrl/admission.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "net/topologies.h"

namespace apple::ctrl {
namespace {

constexpr std::size_t kChains = 4;

struct Fixture {
  net::Topology topo = net::make_internet2();
  DomainPartition part = partition_topology(topo, 2, 0);
};

PolicyRequest add_request(net::NodeId src, net::NodeId dst,
                          traffic::ChainId chain = 0, double rate = 100.0) {
  PolicyRequest r;
  r.kind = PolicyRequest::Kind::kAdd;
  r.src = src;
  r.dst = dst;
  r.chain_id = chain;
  r.rate_mbps = rate;
  return r;
}

TEST(AdmissionConfigTest, ValidateRejectsNegativeWindow) {
  AdmissionConfig config;
  config.batching_window_s = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(AdmissionConfigTest, ValidateRejectsNonFiniteWindow) {
  AdmissionConfig config;
  config.batching_window_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.batching_window_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(AdmissionConfigTest, ValidateRejectsZeroMaxBatch) {
  AdmissionConfig config;
  config.max_batch = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(AdmissionConfigTest, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(AdmissionConfig{}.validate());
}

TEST(AdmissionQueueTest, RejectsMalformedRequests) {
  Fixture f;
  AdmissionQueue queue(f.topo, f.part, kChains);
  const net::NodeId n = static_cast<net::NodeId>(f.topo.num_nodes());

  EXPECT_FALSE(queue.submit(add_request(n, 1), 0.0));       // src out of range
  EXPECT_FALSE(queue.submit(add_request(0, n), 0.0));       // dst out of range
  EXPECT_FALSE(queue.submit(add_request(2, 2), 0.0));       // src == dst
  EXPECT_FALSE(queue.submit(add_request(0, 1, kChains), 0.0));  // bad chain
  EXPECT_FALSE(queue.submit(add_request(0, 1, 0, -5.0), 0.0));  // bad rate
  EXPECT_FALSE(queue.submit(
      add_request(0, 1, 0, std::numeric_limits<double>::quiet_NaN()), 0.0));
  PolicyRequest bad_kind = add_request(0, 1);
  bad_kind.kind = static_cast<PolicyRequest::Kind>(9);
  EXPECT_FALSE(queue.submit(bad_kind, 0.0));
  EXPECT_EQ(queue.pending(), 0u);

  // A remove ignores the rate field entirely.
  PolicyRequest remove = add_request(0, 1, 0, -1.0);
  remove.kind = PolicyRequest::Kind::kRemove;
  EXPECT_TRUE(queue.submit(remove, 0.0));
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(AdmissionQueueTest, BatchingWindowHoldsRequestsBack) {
  Fixture f;
  AdmissionConfig config;
  config.batching_window_s = 1.0;
  AdmissionQueue queue(f.topo, f.part, kChains, config);

  EXPECT_FALSE(queue.batch_ready(0.0));  // nothing pending
  ASSERT_TRUE(queue.submit(add_request(0, 1), 0.0));
  EXPECT_FALSE(queue.batch_ready(0.5));
  EXPECT_TRUE(queue.batch_ready(1.0));

  // Draining before the window elapses returns an empty batch and keeps
  // the requests queued.
  PolicyBatch early = queue.drain(0.5);
  EXPECT_TRUE(early.empty());
  EXPECT_EQ(queue.pending(), 1u);

  PolicyBatch batch = queue.drain(1.0);
  EXPECT_EQ(batch.accepted, 1u);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_FALSE(queue.batch_ready(2.0));  // queue drained
}

TEST(AdmissionQueueTest, MaxBatchCutsEarly) {
  Fixture f;
  AdmissionConfig config;
  config.batching_window_s = 100.0;
  config.max_batch = 3;
  AdmissionQueue queue(f.topo, f.part, kChains, config);
  ASSERT_TRUE(queue.submit(add_request(0, 1), 0.0));
  ASSERT_TRUE(queue.submit(add_request(0, 2), 0.0));
  EXPECT_FALSE(queue.batch_ready(0.0));
  ASSERT_TRUE(queue.submit(add_request(0, 3), 0.0));
  EXPECT_TRUE(queue.batch_ready(0.0));
}

TEST(AdmissionQueueTest, CoalescesLastWriterWinsPerKey) {
  Fixture f;
  AdmissionQueue queue(f.topo, f.part, kChains, AdmissionConfig{0.0, 100});
  ASSERT_TRUE(queue.submit(add_request(0, 1, 0, 100.0), 0.0));
  PolicyRequest modify = add_request(0, 1, 0, 250.0);
  modify.kind = PolicyRequest::Kind::kModify;
  ASSERT_TRUE(queue.submit(modify, 0.0));
  ASSERT_TRUE(queue.submit(add_request(0, 2, 1, 50.0), 0.0));

  PolicyBatch batch = queue.drain(0.0);
  EXPECT_EQ(batch.accepted, 2u);
  EXPECT_EQ(batch.coalesced, 1u);
  const std::uint32_t home = f.part.home_domain(0);
  ASSERT_EQ(batch.per_domain[home].size(), 2u);
  // Only the final state per key survives: the modify's rate.
  EXPECT_EQ(batch.per_domain[home][0].rate_mbps, 250.0);
  EXPECT_EQ(batch.per_domain[home][0].kind, PolicyRequest::Kind::kModify);
}

TEST(AdmissionQueueTest, RoutesRequestsToTheirHomeDomain) {
  Fixture f;
  AdmissionQueue queue(f.topo, f.part, kChains, AdmissionConfig{0.0, 100});
  // One request homed per domain: pick a source in each member list.
  const net::NodeId src0 = f.part.members[0].front();
  const net::NodeId src1 = f.part.members[1].front();
  const net::NodeId dst0 = src0 == 0 ? 1 : 0;
  const net::NodeId dst1 = src1 == 0 ? 1 : 0;
  ASSERT_TRUE(queue.submit(add_request(src0, dst0), 0.0));
  ASSERT_TRUE(queue.submit(add_request(src1, dst1), 0.0));

  PolicyBatch batch = queue.drain(0.0);
  ASSERT_EQ(batch.per_domain.size(), 2u);
  ASSERT_EQ(batch.per_domain[0].size(), 1u);
  ASSERT_EQ(batch.per_domain[1].size(), 1u);
  EXPECT_EQ(batch.per_domain[0][0].src, src0);
  EXPECT_EQ(batch.per_domain[1][0].src, src1);
}

TEST(AdmissionQueueTest, DomainListsComeOutKeySorted) {
  Fixture f;
  AdmissionQueue queue(f.topo, f.part, kChains, AdmissionConfig{0.0, 100});
  ASSERT_TRUE(queue.submit(add_request(5, 3), 0.0));
  ASSERT_TRUE(queue.submit(add_request(5, 1), 0.0));
  ASSERT_TRUE(queue.submit(add_request(2, 4), 0.0));
  PolicyBatch batch = queue.drain(0.0);
  for (const auto& bucket : batch.per_domain) {
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      const auto key = [](const PolicyRequest& r) {
        return std::make_tuple(r.src, r.dst, r.chain_id);
      };
      EXPECT_LT(key(bucket[i - 1]), key(bucket[i]));
    }
  }
}

}  // namespace
}  // namespace apple::ctrl
