#include "ctrl/domain_partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "net/topologies.h"

namespace apple::ctrl {
namespace {

TEST(DomainConfigTest, ValidateRejectsZeroDomains) {
  DomainConfig config;
  config.num_domains = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DomainConfigTest, ValidateRejectsConflictPolicyOutsideEnum) {
  DomainConfig config;
  config.conflict_policy = static_cast<ConflictPolicy>(7);
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(DomainConfigTest, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(DomainConfig{}.validate());
  DomainConfig config;
  config.num_domains = 4;
  config.seed = 42;
  config.conflict_policy = ConflictPolicy::kReject;
  EXPECT_NO_THROW(config.validate());
}

TEST(DomainPartitionTest, SingleDomainOwnsEverything) {
  const net::Topology topo = net::make_internet2();
  const DomainPartition part = partition_topology(topo, 1, 0);
  EXPECT_EQ(part.num_domains, 1u);
  EXPECT_EQ(part.members[0].size(), topo.num_nodes());
  EXPECT_TRUE(part.cut_links.empty());
  for (const std::uint32_t d : part.domain_of) EXPECT_EQ(d, 0u);
}

TEST(DomainPartitionTest, RejectsDegenerateDomainCounts) {
  const net::Topology topo = net::make_internet2();
  EXPECT_THROW(partition_topology(topo, 0, 0), std::invalid_argument);
  EXPECT_THROW(partition_topology(topo, topo.num_nodes() + 1, 0),
               std::invalid_argument);
}

TEST(DomainPartitionTest, CoversEveryNodeWithNonEmptyDomains) {
  const net::Topology topo = net::make_geant();
  for (const std::size_t k : {2u, 4u, 7u}) {
    const DomainPartition part = partition_topology(topo, k, 1);
    ASSERT_EQ(part.domain_of.size(), topo.num_nodes());
    std::size_t covered = 0;
    for (std::size_t d = 0; d < k; ++d) {
      EXPECT_FALSE(part.members[d].empty()) << "domain " << d << " empty";
      EXPECT_TRUE(std::is_sorted(part.members[d].begin(),
                                 part.members[d].end()));
      for (const net::NodeId v : part.members[d]) {
        EXPECT_EQ(part.domain_of[v], d);
      }
      covered += part.members[d].size();
    }
    EXPECT_EQ(covered, topo.num_nodes());
  }
}

TEST(DomainPartitionTest, CutLinksAreExactlyTheCrossDomainLinks) {
  const net::Topology topo = net::make_internet2();
  const DomainPartition part = partition_topology(topo, 3, 5);
  std::set<net::LinkId> cut(part.cut_links.begin(), part.cut_links.end());
  EXPECT_EQ(cut.size(), part.cut_links.size()) << "duplicate cut link";
  EXPECT_TRUE(std::is_sorted(part.cut_links.begin(), part.cut_links.end()));
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const net::Link& link = topo.link(static_cast<net::LinkId>(l));
    const bool crosses =
        part.domain_of[link.a] != part.domain_of[link.b];
    EXPECT_EQ(cut.count(static_cast<net::LinkId>(l)) == 1, crosses);
  }
}

TEST(DomainPartitionTest, PureFunctionOfTopoDomainsAndSeed) {
  const net::Topology topo = net::make_geant();
  const DomainPartition a = partition_topology(topo, 4, 9);
  const DomainPartition b = partition_topology(topo, 4, 9);
  EXPECT_EQ(a.domain_of, b.domain_of);
  EXPECT_EQ(a.cut_links, b.cut_links);
  // A different seed re-ranks the seed nodes: the partition is allowed to
  // (and on GEANT does) differ.
  const DomainPartition c = partition_topology(topo, 4, 10);
  EXPECT_NE(a.domain_of, c.domain_of);
}

TEST(DomainPartitionTest, DomainsAreConnectedOnConnectedTopologies) {
  // BFS growth from one seed per domain keeps each domain connected when
  // the topology itself is connected.
  const net::Topology topo = net::make_internet2();
  const DomainPartition part = partition_topology(topo, 4, 3);
  for (std::size_t d = 0; d < part.num_domains; ++d) {
    const std::vector<net::NodeId>& members = part.members[d];
    std::set<net::NodeId> in_domain(members.begin(), members.end());
    std::set<net::NodeId> seen;
    std::vector<net::NodeId> stack{members.front()};
    seen.insert(members.front());
    while (!stack.empty()) {
      const net::NodeId u = stack.back();
      stack.pop_back();
      for (const net::NodeId v : topo.neighbors(u)) {
        if (in_domain.count(v) != 0 && seen.insert(v).second) {
          stack.push_back(v);
        }
      }
    }
    EXPECT_EQ(seen.size(), members.size()) << "domain " << d << " split";
  }
}

TEST(DomainPartitionTest, CrossesDomainsAndHomeDomain) {
  net::Topology topo("line");
  for (int i = 0; i < 4; ++i) topo.add_node("n" + std::to_string(i), 8.0);
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  DomainPartition part;
  part.num_domains = 2;
  part.domain_of = {0, 0, 1, 1};
  part.members = {{0, 1}, {2, 3}};
  part.cut_links = {1};
  EXPECT_EQ(part.home_domain(1), 0u);
  EXPECT_EQ(part.home_domain(2), 1u);
  const std::vector<net::NodeId> local{0, 1};
  const std::vector<net::NodeId> crossing{0, 1, 2, 3};
  EXPECT_FALSE(part.crosses_domains(local));
  EXPECT_TRUE(part.crosses_domains(crossing));
}

TEST(DomainPartitionTest, ClassesBucketByIngressDomain) {
  net::Topology topo("pair");
  for (int i = 0; i < 4; ++i) topo.add_node("n" + std::to_string(i), 8.0);
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  DomainPartition part;
  part.num_domains = 2;
  part.domain_of = {0, 0, 1, 1};
  part.members = {{0, 1}, {2, 3}};

  std::vector<traffic::TrafficClass> classes(3);
  classes[0].src = 0;
  classes[0].dst = 3;  // crosses, but homed at domain 0 (ingress rule)
  classes[1].src = 2;
  classes[1].dst = 3;
  classes[2].src = 1;
  classes[2].dst = 0;
  const auto buckets = classes_by_domain(part, classes);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(buckets[1], (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace apple::ctrl
