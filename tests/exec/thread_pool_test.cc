#include "exec/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace apple::exec {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  TaskGroup group(pool);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    group.run([&hits, i] { hits[i].fetch_add(1); });
  }
  group.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadPoolRunsTasksInWait) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i) {
    group.run([&counter] { counter.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, TaskGroupIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
  group.run([&counter] { counter.fetch_add(1); });
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, NestedTaskGroupsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaf_count{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&pool, &leaf_count] {
      // A pool task that itself fans out and waits: wait() must help run
      // queued tasks instead of blocking a worker slot.
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) {
        inner.run([&leaf_count] { leaf_count.fetch_add(1); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaf_count.load(), 64);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.run([&completed, i] {
      if (i == 3) throw std::runtime_error("task failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The failing task does not cancel the rest of the batch.
  EXPECT_EQ(completed.load(), 15);
  // The error was consumed: a reused group starts clean.
  group.run([&completed] { completed.fetch_add(1); });
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolTest, DestructorUnderLoadExecutesEverything) {
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(4);
    TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i) {
      group.run([&counter] { counter.fetch_add(1); });
    }
    // No wait(): the group destructor (then the pool destructor) must
    // drain — every task runs exactly once, none is dropped.
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, TasksSpawnedDuringShutdownStillRun) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.run([&pool, &counter] {
        TaskGroup child(pool);
        child.run([&counter] { counter.fetch_add(1); });
        child.wait();
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, ParallelForCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 64,
                            [](std::size_t i) {
                              if (i == 17) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ThreadPoolTest, StatsCountEveryTask) {
  ThreadPool pool(2);
  constexpr std::size_t kTasks = 50;
  TaskGroup group(pool);
  for (std::size_t i = 0; i < kTasks; ++i) {
    group.run([] {});
  }
  group.wait();
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, kTasks);
  EXPECT_GE(stats.queue_depth_high_water, 1u);
}

TEST(ThreadPoolTest, ParallelChunksBoundariesAreExact) {
  ThreadPool pool(3);
  // 10 over 4 chunks: sizes 3,3,2,2 — the +1 remainder goes to the leading
  // chunks, boundaries contiguous.
  std::vector<std::pair<std::size_t, std::size_t>> slices(4);
  parallel_chunks(pool, 5, 15, 4,
                  [&slices](std::size_t c, std::size_t lo, std::size_t hi) {
                    slices[c] = {lo, hi};
                  });
  EXPECT_EQ(slices[0], (std::pair<std::size_t, std::size_t>{5, 8}));
  EXPECT_EQ(slices[1], (std::pair<std::size_t, std::size_t>{8, 11}));
  EXPECT_EQ(slices[2], (std::pair<std::size_t, std::size_t>{11, 13}));
  EXPECT_EQ(slices[3], (std::pair<std::size_t, std::size_t>{13, 15}));
}

TEST(ThreadPoolTest, ParallelChunksBoundariesIgnoreWorkerCount) {
  // The chunk boundaries are a pure function of (range, chunks): pools of
  // different widths must produce identical slices — that invariance is
  // what makes chunk-indexed output buffers worker-count-deterministic.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> runs;
  for (const std::size_t threads : {0u, 1u, 3u, 7u}) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> slices(6);
    parallel_chunks(pool, 0, 1000, 6,
                    [&slices](std::size_t c, std::size_t lo, std::size_t hi) {
                      slices[c] = {lo, hi};
                    });
    runs.push_back(std::move(slices));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) EXPECT_EQ(runs[i], runs[0]);
}

TEST(ThreadPoolTest, ParallelChunksEmptyTrailingSlices) {
  ThreadPool pool(2);
  std::vector<std::pair<std::size_t, std::size_t>> slices(5);
  std::atomic<int> calls{0};
  parallel_chunks(pool, 0, 3, 5,
                  [&](std::size_t c, std::size_t lo, std::size_t hi) {
                    slices[c] = {lo, hi};
                    calls.fetch_add(1);
                  });
  // Every chunk is invoked, the last two with lo == hi.
  EXPECT_EQ(calls.load(), 5);
  EXPECT_EQ(slices[2], (std::pair<std::size_t, std::size_t>{2, 3}));
  EXPECT_EQ(slices[3], (std::pair<std::size_t, std::size_t>{3, 3}));
  EXPECT_EQ(slices[4], (std::pair<std::size_t, std::size_t>{3, 3}));
}

TEST(ThreadPoolTest, ParallelChunksCoversRangeOnceAndRethrows) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_chunks(pool, 0, hits.size(), 8,
                  [&hits](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
                  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_THROW(
      parallel_chunks(pool, 0, 64, 8,
                      [](std::size_t c, std::size_t, std::size_t) {
                        if (c == 5) throw std::runtime_error("chunk failed");
                      }),
      std::runtime_error);
}

TEST(ThreadPoolTest, CurrentWorkerIndexDistinguishesPoolThreads) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.current_worker_index(), pool.num_threads());
  std::atomic<bool> saw_external_index{false};
  std::atomic<int> remaining{64};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.run([&pool, &saw_external_index, &remaining] {
      if (pool.current_worker_index() >= pool.num_threads()) {
        saw_external_index.store(true);
      }
      remaining.fetch_sub(1);
    });
  }
  // Spin outside wait() so this thread never helps: every task then runs
  // on a pool thread and must observe a worker index, never the external
  // sentinel.
  while (remaining.load() > 0) std::this_thread::yield();
  group.wait();
  EXPECT_FALSE(saw_external_index.load());
}

}  // namespace
}  // namespace apple::exec
