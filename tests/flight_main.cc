// gtest main for the APPLE test binaries.
//
// Identical to GTest::gtest_main except that it installs the flight-recorder
// crash dump first: a test that dies on an APPLE_CHECK (as opposed to a
// plain EXPECT failure) drains the per-thread event rings to
// flight_<pid>.json before aborting, so CI's failed-job artifact upload
// carries the last few thousand events leading up to the check. Ordinary
// passing/failing runs write nothing — the observer only fires on the
// abort path.
#include <gtest/gtest.h>

#include "obs/event_log.h"

int main(int argc, char** argv) {
  apple::obs::install_flight_crash_dump();
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
