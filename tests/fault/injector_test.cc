// FaultInjector: link severing, node kills, ordinal-fault hooks, and the
// deterministic victim selection they all share.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "sim/event_queue.h"

namespace apple::fault {
namespace {

using vnf::NfType;

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest()
      : topo_(net::make_line(4, 64.0)),
        flow_(0.05),
        orch_(topo_),
        dp_(topo_),
        injector_({&topo_, &flow_, &orch_, &dp_},
                  {[this](const FaultEvent& e, double now) {
                     injected_.push_back({e.fault_id, now});
                   },
                   [this](const FaultEvent& e, double now) {
                     cleared_.push_back({e.fault_id, now});
                   }}) {}

  // Launches an NF at switch `v` and registers it everywhere a real driver
  // would; non-ClickOS types must take the full OpenStack pipeline.
  vnf::InstanceId launch(NfType type, net::NodeId v) {
    const orch::LaunchResult r =
        orch_.launch(type, v, flow_.now(),
                     vnf::spec_of(type).clickos ? orch::LaunchPath::kBareXen
                                                : orch::LaunchPath::kOpenStack);
    EXPECT_TRUE(r.ok()) << to_string(r.status);
    flow_.add_instance(r.instance, r.ready_at);
    dp_.register_instance(r.instance);
    return r.instance.id;
  }

  // Arms a hand-built schedule and runs the clock past its horizon.
  void arm_and_run(std::vector<FaultEvent> events, double until) {
    injector_.arm(queue_, FaultSchedule(std::move(events)));
    queue_.run_until(until);
  }

  static FaultEvent event(FaultId id, double at, FaultKind kind) {
    FaultEvent e;
    e.fault_id = id;
    e.at = at;
    e.kind = kind;
    return e;
  }

  net::Topology topo_;
  sim::FlowSimulation flow_;
  orch::ResourceOrchestrator orch_;
  dataplane::DataPlane dp_;
  FaultInjector injector_;
  sim::EventQueue queue_;
  std::vector<std::pair<FaultId, double>> injected_;
  std::vector<std::pair<FaultId, double>> cleared_;
};

TEST_F(InjectorTest, LinkDownSeversClassAndLinkUpRestores) {
  const net::LinkId link01 = *topo_.find_link(0, 1);
  injector_.register_class(7, {0, 1, 2});
  injector_.register_class(8, {2, 3});  // does not cross link01

  FaultEvent down = event(0, 1.0, FaultKind::kLinkDown);
  down.link = link01;
  FaultEvent up = down;
  up.kind = FaultKind::kLinkUp;
  up.at = 2.0;
  arm_and_run({down, up}, 1.5);

  EXPECT_FALSE(topo_.link_up(link01));
  EXPECT_TRUE(injector_.link_is_down(link01));
  EXPECT_TRUE(flow_.class_severed(7));
  EXPECT_FALSE(flow_.class_severed(8));
  EXPECT_EQ(injector_.classes_severed(0),
            (std::vector<traffic::ClassId>{7}));
  ASSERT_EQ(injected_.size(), 1u);
  EXPECT_DOUBLE_EQ(injected_[0].second, 1.0);

  queue_.run_until(3.0);
  EXPECT_TRUE(topo_.link_up(link01));
  EXPECT_FALSE(injector_.link_is_down(link01));
  EXPECT_FALSE(flow_.class_severed(7));
  ASSERT_EQ(cleared_.size(), 1u);
  EXPECT_EQ(cleared_[0].first, 0u);
  EXPECT_DOUBLE_EQ(cleared_[0].second, 2.0);
}

TEST_F(InjectorTest, OverlappingOutagesRestoreOnlyWhenPathIsWhole) {
  const net::LinkId link01 = *topo_.find_link(0, 1);
  const net::LinkId link12 = *topo_.find_link(1, 2);
  injector_.register_class(5, {0, 1, 2});

  FaultEvent down_a = event(0, 1.0, FaultKind::kLinkDown);
  down_a.link = link01;
  FaultEvent up_a = down_a;
  up_a.kind = FaultKind::kLinkUp;
  up_a.at = 2.0;
  FaultEvent down_b = event(1, 1.5, FaultKind::kLinkDown);
  down_b.link = link12;
  FaultEvent up_b = down_b;
  up_b.kind = FaultKind::kLinkUp;
  up_b.at = 3.0;

  arm_and_run({down_a, up_a, down_b, up_b}, 2.5);
  // link01 is back but link12 is still dead: the path stays severed.
  EXPECT_TRUE(flow_.class_severed(5));
  // The second down found the class already severed, so it owns nothing.
  EXPECT_TRUE(injector_.classes_severed(1).empty());

  queue_.run_until(3.5);
  EXPECT_FALSE(flow_.class_severed(5));
}

TEST_F(InjectorTest, NodeDownKillsEveryInstanceOnTheHost) {
  const vnf::InstanceId fw = launch(NfType::kFirewall, 1);
  const vnf::InstanceId ids = launch(NfType::kIds, 1);
  const vnf::InstanceId other = launch(NfType::kFirewall, 2);

  FaultEvent e = event(3, 1.0, FaultKind::kNodeDown);
  e.node = 1;
  arm_and_run({e}, 1.5);

  EXPECT_TRUE(injector_.node_is_down(1));
  EXPECT_TRUE(orch_.host_down(1));
  EXPECT_FALSE(orch_.is_alive(fw));
  EXPECT_FALSE(orch_.is_alive(ids));
  EXPECT_TRUE(orch_.is_alive(other));
  EXPECT_FALSE(flow_.instance_alive(fw));
  EXPECT_FALSE(dp_.has_instance(fw));
  EXPECT_TRUE(dp_.has_instance(other));

  const auto& killed = injector_.instances_killed(3);
  ASSERT_EQ(killed.size(), 2u);
  // Victims are recorded in ascending id order with placement facts.
  EXPECT_EQ(killed[0].id, fw);
  EXPECT_EQ(killed[0].host, 1u);
  EXPECT_EQ(killed[0].type, NfType::kFirewall);
  EXPECT_EQ(killed[1].id, ids);
  EXPECT_EQ(killed[1].type, NfType::kIds);

  // Launching at the dead host is rejected until it is repaired.
  const orch::LaunchResult r =
      orch_.launch(NfType::kFirewall, 1, 2.0, orch::LaunchPath::kBareXen);
  EXPECT_EQ(r.status, orch::LaunchStatus::kHostDown);
}

TEST_F(InjectorTest, CrashSelectsOrdinalOverSortedLiveIds) {
  const vnf::InstanceId a = launch(NfType::kFirewall, 1);
  const vnf::InstanceId b = launch(NfType::kIds, 2);
  const vnf::InstanceId c = launch(NfType::kFirewall, 3);
  ASSERT_LT(a, b);
  ASSERT_LT(b, c);

  // ordinal 4 over live {a,b,c} -> index 4 % 3 = 1 -> b.
  FaultEvent first = event(0, 1.0, FaultKind::kInstanceCrash);
  first.ordinal = 4;
  // After b dies, live is {a,c}; ordinal 3 -> index 3 % 2 = 1 -> c.
  FaultEvent second = event(1, 2.0, FaultKind::kInstanceCrash);
  second.ordinal = 3;
  arm_and_run({first, second}, 3.0);

  ASSERT_EQ(injector_.instances_killed(0).size(), 1u);
  EXPECT_EQ(injector_.instances_killed(0)[0].id, b);
  ASSERT_EQ(injector_.instances_killed(1).size(), 1u);
  EXPECT_EQ(injector_.instances_killed(1)[0].id, c);
  EXPECT_TRUE(orch_.is_alive(a));
  EXPECT_EQ(injector_.faults_skipped(), 0u);
}

TEST_F(InjectorTest, CrashWithEmptyFleetIsCountedAsSkipped) {
  arm_and_run({event(0, 1.0, FaultKind::kInstanceCrash)}, 2.0);
  EXPECT_EQ(injector_.faults_skipped(), 1u);
  EXPECT_TRUE(injector_.instances_killed(0).empty());
  EXPECT_TRUE(injected_.empty());
}

TEST_F(InjectorTest, BootFailureFiresOnNextLaunch) {
  arm_and_run({event(9, 1.0, FaultKind::kBootFailure)}, 1.5);
  EXPECT_EQ(injector_.pending_boot_faults(), 1u);

  const orch::LaunchResult r =
      orch_.launch(NfType::kFirewall, 1, 1.5, orch::LaunchPath::kBareXen);
  EXPECT_EQ(r.status, orch::LaunchStatus::kBootFailure);
  EXPECT_EQ(injector_.pending_boot_faults(), 0u);

  const auto fired = injector_.take_fired_ordinal();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->fault_id, 9u);
  EXPECT_EQ(fired->kind, FaultKind::kBootFailure);
  EXPECT_FALSE(injector_.take_fired_ordinal().has_value());

  // The fault is spent: the next launch is clean.
  const orch::LaunchResult retry =
      orch_.launch(NfType::kFirewall, 1, 2.0, orch::LaunchPath::kBareXen);
  EXPECT_TRUE(retry.ok());
}

TEST_F(InjectorTest, SlowBootStretchesTheBootLatency) {
  FaultEvent slow = event(4, 1.0, FaultKind::kSlowBoot);
  slow.multiplier = 4.0;
  arm_and_run({slow}, 1.5);

  const double normal = orch_.timings().clickos_boot_bare_xen;
  const orch::LaunchResult r =
      orch_.launch(NfType::kFirewall, 1, 2.0, orch::LaunchPath::kBareXen);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ready_at, 2.0 + 4.0 * normal, 1e-9);

  const auto fired = injector_.take_fired_ordinal();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->kind, FaultKind::kSlowBoot);
}

TEST_F(InjectorTest, RuleInstallFaultRejectsExactlyOneInstall) {
  const vnf::InstanceId fw = launch(NfType::kFirewall, 1);

  traffic::TrafficClass cls;
  cls.id = 0;
  cls.src = 0;
  cls.dst = 3;
  cls.path = {0, 1, 2, 3};
  dataplane::SubclassPlan plan;
  plan.class_id = 0;
  plan.subclass_id = 0;
  plan.weight = 1.0;
  plan.itinerary = {{1, {fw}}};

  arm_and_run({event(6, 1.0, FaultKind::kRuleInstallFailure)}, 1.5);
  EXPECT_EQ(injector_.pending_rule_faults(), 1u);
  EXPECT_THROW(dp_.install_class(cls, {plan}), dataplane::RuleInstallError);
  EXPECT_FALSE(dp_.has_class(0));  // rejected install left no state behind
  EXPECT_EQ(injector_.pending_rule_faults(), 0u);

  const auto fired = injector_.take_fired_ordinal();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->fault_id, 6u);

  // Retry, like a controller re-pushing the flow-mod.
  EXPECT_NO_THROW(dp_.install_class(cls, {plan}));
  EXPECT_TRUE(dp_.has_class(0));
}

}  // namespace
}  // namespace apple::fault
