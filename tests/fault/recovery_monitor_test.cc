// RecoveryMonitor: fault lifecycle accounting, latency statistics, policy
// probing against a live data plane, and the determinism fingerprint.
#include "fault/recovery_monitor.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace apple::fault {
namespace {

using vnf::NfType;

FaultEvent crash_event(FaultId id) {
  FaultEvent e;
  e.fault_id = id;
  e.kind = FaultKind::kInstanceCrash;
  return e;
}

TEST(RecoveryMonitor, LifecycleTimestampsAndIdempotence) {
  RecoveryMonitor monitor;
  monitor.on_injected(crash_event(1), 2.0);
  monitor.on_injected(crash_event(1), 5.0);  // duplicate: ignored

  auto rec = monitor.record(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_DOUBLE_EQ(rec->injected_at, 2.0);
  EXPECT_FALSE(rec->detected());
  EXPECT_FALSE(monitor.all_repaired());
  EXPECT_EQ(monitor.open_faults(), (std::vector<FaultId>{1}));

  monitor.on_detected(1, 2.5);
  monitor.on_detected(1, 9.0);  // first detection wins
  rec = monitor.record(1);
  EXPECT_DOUBLE_EQ(rec->detected_at, 2.5);
  EXPECT_DOUBLE_EQ(rec->time_to_detect(), 0.5);

  monitor.on_repaired(1, 4.0);
  monitor.on_repaired(1, 9.0);  // ignored
  rec = monitor.record(1);
  EXPECT_DOUBLE_EQ(rec->repaired_at, 4.0);
  EXPECT_DOUBLE_EQ(rec->time_to_repair(), 2.0);
  EXPECT_TRUE(monitor.all_repaired());
  EXPECT_TRUE(monitor.open_faults().empty());
}

TEST(RecoveryMonitor, RepairImpliesDetection) {
  // Self-clearing faults (link up) may never get an explicit on_detected.
  RecoveryMonitor monitor;
  monitor.on_injected(crash_event(3), 1.0);
  monitor.on_repaired(3, 2.5);
  const auto rec = monitor.record(3);
  ASSERT_TRUE(rec.has_value());
  EXPECT_DOUBLE_EQ(rec->detected_at, 2.5);
  EXPECT_DOUBLE_EQ(rec->repaired_at, 2.5);
}

TEST(RecoveryMonitor, LossAttributionFallsBackToUnattributed) {
  RecoveryMonitor monitor;
  monitor.on_injected(crash_event(1), 1.0);
  monitor.account_loss(1, 10.0);
  monitor.account_loss(1, 5.0);
  monitor.account_loss(99, 7.0);  // unknown fault id
  monitor.account_unattributed(3.0);
  monitor.account_loss(1, -1.0);  // non-positive: ignored

  const RecoveryReport report = monitor.report();
  EXPECT_DOUBLE_EQ(report.traffic_lost_mbit, 15.0);
  EXPECT_DOUBLE_EQ(report.unattributed_lost_mbit, 10.0);
}

TEST(RecoveryMonitor, UnknownFaultQueriesAreHarmless) {
  RecoveryMonitor monitor;
  monitor.on_detected(5, 1.0);  // never injected: no record appears
  monitor.on_repaired(5, 2.0);
  EXPECT_FALSE(monitor.record(5).has_value());
  EXPECT_TRUE(monitor.all_repaired());  // vacuous
  EXPECT_EQ(monitor.report().injected, 0u);
}

TEST(LatencyStats, NearestRankPercentiles) {
  // 1..100 reversed: from_samples must sort first.
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const LatencyStats stats = LatencyStats::from_samples(std::move(samples));
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.mean, 50.5);
  EXPECT_DOUBLE_EQ(stats.p50, 50.0);  // nearest-rank: ceil(0.5*100) = 50th
  EXPECT_DOUBLE_EQ(stats.p99, 99.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
}

TEST(LatencyStats, SmallAndEmptySamples) {
  const LatencyStats empty = LatencyStats::from_samples({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);

  const LatencyStats one = LatencyStats::from_samples({7.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.p50, 7.0);
  EXPECT_DOUBLE_EQ(one.p99, 7.0);
  EXPECT_DOUBLE_EQ(one.max, 7.0);
}

class PolicyProbeTest : public ::testing::Test {
 protected:
  PolicyProbeTest() : topo_(net::make_line(4, 64.0)), dp_(topo_) {
    dp_.register_instance({/*id=*/1, NfType::kFirewall, /*host=*/1, 900.0});
    dp_.register_instance({/*id=*/2, NfType::kIds, /*host=*/2, 600.0});

    traffic::TrafficClass cls;
    cls.id = 0;
    cls.src = 0;
    cls.dst = 3;
    cls.path = {0, 1, 2, 3};
    dataplane::SubclassPlan plan;
    plan.class_id = 0;
    plan.subclass_id = 0;
    plan.weight = 1.0;
    plan.itinerary = {{1, {1}}, {2, {2}}};
    dp_.install_class(cls, {plan});
  }

  PolicyProbe probe(std::vector<NfType> expected) const {
    PolicyProbe p;
    p.class_id = 0;
    p.header.src_ip = 0x0a000001;
    p.header.dst_ip = 0x0a000002;
    p.header.src_port = 1024;
    p.header.dst_port = 443;
    p.header.proto = 6;
    p.expected_chain = std::move(expected);
    return p;
  }

  net::Topology topo_;
  dataplane::DataPlane dp_;
};

TEST_F(PolicyProbeTest, CorrectChainIsNoViolation) {
  RecoveryMonitor monitor;
  const std::vector<PolicyProbe> probes = {
      probe({NfType::kFirewall, NfType::kIds})};
  EXPECT_EQ(monitor.verify_policies(dp_, probes), 0u);
  const RecoveryReport report = monitor.report();
  EXPECT_EQ(report.policy_probes, 1u);
  EXPECT_EQ(report.policy_violations, 0u);
  EXPECT_EQ(report.blackholed_probes, 0u);
}

TEST_F(PolicyProbeTest, BlackholedProbeIsAllowed) {
  // A crashed (unregistered) instance makes the walk fail mid-chain: that
  // is availability loss during the repair window, not a violation.
  dp_.unregister_instance(2);
  RecoveryMonitor monitor;
  const std::vector<PolicyProbe> probes = {
      probe({NfType::kFirewall, NfType::kIds})};
  EXPECT_EQ(monitor.verify_policies(dp_, probes), 0u);
  const RecoveryReport report = monitor.report();
  EXPECT_EQ(report.policy_violations, 0u);
  EXPECT_EQ(report.blackholed_probes, 1u);
}

TEST_F(PolicyProbeTest, WrongChainIsAViolation) {
  RecoveryMonitor monitor;
  // The policy expected FW only; the data plane also ran IDS.
  const std::vector<PolicyProbe> probes = {probe({NfType::kFirewall})};
  EXPECT_EQ(monitor.verify_policies(dp_, probes), 1u);
  EXPECT_EQ(monitor.policy_violations(), 1u);
}

TEST(RecoveryReport, FingerprintIsDeterministicAndValueSensitive) {
  const auto build = [](double repair_time) {
    RecoveryMonitor monitor;
    monitor.on_injected(crash_event(1), 1.0);
    monitor.on_detected(1, 1.25);
    monitor.on_repaired(1, repair_time);
    monitor.account_loss(1, 12.5);
    FaultEvent link = crash_event(2);
    link.kind = FaultKind::kLinkDown;
    monitor.on_injected(link, 2.0);
    return monitor.report();
  };
  const RecoveryReport a = build(3.0);
  const RecoveryReport b = build(3.0);
  const RecoveryReport c = build(3.5);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  // Human-auditable: names the fault kind and the lifecycle timestamps.
  EXPECT_NE(a.fingerprint().find("instance-crash"), std::string::npos);
  EXPECT_NE(a.fingerprint().find("link-down"), std::string::npos);
  EXPECT_NE(a.fingerprint().find("totals injected=2"), std::string::npos);
  EXPECT_FALSE(a.all_repaired());
}

}  // namespace
}  // namespace apple::fault
