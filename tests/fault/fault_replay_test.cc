// End-to-end fault replay: seeded schedules fired against a live placement
// must be fully repaired, policy-clean, and bit-deterministic — the three
// gates bench_fault_recovery enforces, exercised here per scenario.
#include "core/fault_replay.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "traffic/synthesis.h"
#include "traffic/traffic_matrix.h"

namespace apple::core {
namespace {

class FaultReplayTest : public ::testing::Test {
 protected:
  FaultReplayTest()
      : topo_(net::make_internet2()),
        controller_(topo_, vnf::default_policy_chains(), config()) {
    const traffic::TrafficMatrix base = traffic::make_gravity_matrix(
        topo_.num_nodes(), {.total_mbps = 5000.0});
    traffic::DiurnalConfig diurnal;
    diurnal.num_snapshots = 6;
    diurnal.snapshots_per_day = 6;
    diurnal.noise_sigma = 0.0;
    series_ = traffic::make_diurnal_series(base, diurnal);
    epoch_ = controller_.optimize(traffic::mean_matrix(series_));
  }

  static ControllerConfig config() {
    ControllerConfig cfg;
    cfg.engine.strategy = PlacementStrategy::kGreedy;
    cfg.policied_fraction = 0.5;
    return cfg;
  }

  fault::FaultSchedule seeded(fault::ScheduleConfig cfg) const {
    cfg.start = 1.0;
    cfg.horizon = 4.0;
    return fault::make_schedule(topo_, cfg);
  }

  FaultReplayResult run(const fault::FaultSchedule& schedule) const {
    return replay_with_faults(controller_, epoch_, series_, schedule);
  }

  net::Topology topo_;
  AppleController controller_;
  std::vector<traffic::TrafficMatrix> series_;
  Epoch epoch_;
};

TEST_F(FaultReplayTest, FaultFreeReplayIsClean) {
  const FaultReplayResult result = run(fault::FaultSchedule{});
  EXPECT_EQ(result.recovery.injected, 0u);
  EXPECT_TRUE(result.recovery.all_repaired());
  EXPECT_EQ(result.recovery.policy_violations, 0u);
  EXPECT_GT(result.recovery.policy_probes, 0u);
  EXPECT_EQ(result.recovery.blackholed_probes, 0u);
  EXPECT_EQ(result.snapshot_loss.size(), series_.size());
  EXPECT_DOUBLE_EQ(result.recovery.traffic_lost_mbit, 0.0);
}

TEST_F(FaultReplayTest, CrashesAreDetectedRepairedAndPolicyClean) {
  fault::ScheduleConfig cfg;
  cfg.instance_crashes = 2;
  cfg.seed = 11;
  const FaultReplayResult result = run(seeded(cfg));

  EXPECT_EQ(result.recovery.injected, 2u);
  EXPECT_TRUE(result.recovery.all_repaired())
      << result.recovery.fingerprint();
  EXPECT_EQ(result.recovery.policy_violations, 0u);
  EXPECT_EQ(result.faults_skipped, 0u);
  // Detection rides the counter poll: strictly positive, bounded by the
  // poll interval; repair cannot precede detection.
  for (const fault::FaultRecord& r : result.recovery.records) {
    EXPECT_GT(r.time_to_detect(), 0.0);
    EXPECT_LE(r.time_to_detect(), 0.1 + 1e-9);
    EXPECT_GE(r.time_to_repair(), r.time_to_detect());
  }
  // A crash blackholes its instance's share until the replacement serves.
  EXPECT_GT(result.recovery.traffic_lost_mbit, 0.0);
}

TEST_F(FaultReplayTest, SameSeedRunsAreByteIdentical) {
  fault::ScheduleConfig cfg;
  cfg.instance_crashes = 2;
  cfg.link_flaps = 1;
  cfg.seed = 5;
  const FaultReplayResult a = run(seeded(cfg));
  const FaultReplayResult b = run(seeded(cfg));
  EXPECT_EQ(a.recovery.fingerprint(), b.recovery.fingerprint());
  EXPECT_EQ(a.snapshot_loss, b.snapshot_loss);
  EXPECT_EQ(a.snapshot_blackholed, b.snapshot_blackholed);
  EXPECT_EQ(a.end_time, b.end_time);

  fault::ScheduleConfig other = cfg;
  other.seed = 6;
  const FaultReplayResult c = run(seeded(other));
  EXPECT_NE(a.recovery.fingerprint(), c.recovery.fingerprint());
}

TEST_F(FaultReplayTest, NodeFailureIsRepairedByReoptimization) {
  fault::ScheduleConfig cfg;
  cfg.node_failures = 1;
  cfg.seed = 3;
  const FaultReplayResult result = run(seeded(cfg));

  EXPECT_EQ(result.recovery.injected, 1u);
  EXPECT_TRUE(result.recovery.all_repaired())
      << result.recovery.fingerprint();
  EXPECT_EQ(result.recovery.policy_violations, 0u);
  // The full placement swap pays boot + rule-install makespan, far beyond
  // a single crash failover.
  const fault::FaultRecord& r = result.recovery.records.front();
  EXPECT_EQ(r.kind, fault::FaultKind::kNodeDown);
  EXPECT_GT(r.time_to_repair(), 1.0);
}

TEST_F(FaultReplayTest, LinkFlapSelfRepairsWithoutReroute) {
  fault::ScheduleConfig cfg;
  cfg.link_flaps = 2;
  cfg.seed = 7;
  const FaultReplayResult result = run(seeded(cfg));

  EXPECT_EQ(result.recovery.injected, 2u);
  EXPECT_TRUE(result.recovery.all_repaired())
      << result.recovery.fingerprint();
  EXPECT_EQ(result.recovery.policy_violations, 0u);
  // Interference freedom: the outage ends when the link comes back, so
  // repair time tracks the scheduled downtime window.
  for (const fault::FaultRecord& r : result.recovery.records) {
    EXPECT_EQ(r.kind, fault::FaultKind::kLinkDown);
    EXPECT_GE(r.time_to_repair(), cfg.link_downtime_min - 1e-9);
    EXPECT_LE(r.time_to_repair(), cfg.link_downtime_max + 1e-9);
  }
}

TEST_F(FaultReplayTest, OrdinalFaultsForceRetriesButStillRepair) {
  // Hand-built timeline: a crash at t=1, with a boot fault and a rule fault
  // armed just after it, so the recovery launch and the recovery rule swap
  // each eat exactly one injected failure and must retry.
  std::vector<fault::FaultEvent> events;
  fault::FaultEvent crash;
  crash.fault_id = 0;
  crash.at = 1.0;
  crash.kind = fault::FaultKind::kInstanceCrash;
  crash.ordinal = 2;
  events.push_back(crash);
  fault::FaultEvent boot;
  boot.fault_id = 1;
  boot.at = 1.01;
  boot.kind = fault::FaultKind::kBootFailure;
  events.push_back(boot);
  fault::FaultEvent rule;
  rule.fault_id = 2;
  rule.at = 1.02;
  rule.kind = fault::FaultKind::kRuleInstallFailure;
  events.push_back(rule);

  const FaultReplayResult result =
      run(fault::FaultSchedule(std::move(events)));
  EXPECT_EQ(result.recovery.injected, 3u);
  EXPECT_TRUE(result.recovery.all_repaired())
      << result.recovery.fingerprint();
  EXPECT_EQ(result.recovery.policy_violations, 0u);
  EXPECT_GE(result.boot_retries, 1u);
  EXPECT_GE(result.rule_retries, 1u);
}

TEST_F(FaultReplayTest, SlowBootStretchesRecoveryButRepairs) {
  std::vector<fault::FaultEvent> events;
  fault::FaultEvent crash;
  crash.fault_id = 0;
  crash.at = 1.0;
  crash.kind = fault::FaultKind::kInstanceCrash;
  crash.ordinal = 0;
  events.push_back(crash);
  fault::FaultEvent slow;
  slow.fault_id = 1;
  slow.at = 1.01;
  slow.kind = fault::FaultKind::kSlowBoot;
  slow.multiplier = 4.0;
  events.push_back(slow);

  const FaultReplayResult result =
      run(fault::FaultSchedule(std::move(events)));
  EXPECT_EQ(result.recovery.injected, 2u);
  EXPECT_TRUE(result.recovery.all_repaired())
      << result.recovery.fingerprint();
  EXPECT_EQ(result.recovery.policy_violations, 0u);
  EXPECT_EQ(result.boot_retries, 0u);  // slow, not failed
}

TEST_F(FaultReplayTest, CorrelatedBurstRepairsBothCrashes) {
  fault::ScheduleConfig cfg;
  cfg.correlated_bursts = 1;
  cfg.seed = 13;
  const FaultReplayResult result = run(seeded(cfg));
  EXPECT_EQ(result.recovery.injected, 2u);
  EXPECT_TRUE(result.recovery.all_repaired())
      << result.recovery.fingerprint();
  EXPECT_EQ(result.recovery.policy_violations, 0u);
}

}  // namespace
}  // namespace apple::core
