// FaultSchedule compiler: determinism, event shape, and the CLI spec
// parser.
#include "fault/fault_schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/topologies.h"

namespace apple::fault {
namespace {

ScheduleConfig full_config(std::uint64_t seed) {
  ScheduleConfig cfg;
  cfg.seed = seed;
  cfg.instance_crashes = 2;
  cfg.node_failures = 1;
  cfg.link_flaps = 2;
  cfg.boot_failures = 1;
  cfg.slow_boots = 1;
  cfg.rule_install_failures = 1;
  cfg.correlated_bursts = 1;
  return cfg;
}

TEST(FaultSchedule, SameSeedCompilesIdenticalSchedules) {
  const net::Topology topo = net::make_internet2();
  const FaultSchedule a = make_schedule(topo, full_config(42));
  const FaultSchedule b = make_schedule(topo, full_config(42));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FaultEvent& ea = a.events()[i];
    const FaultEvent& eb = b.events()[i];
    EXPECT_EQ(ea.fault_id, eb.fault_id);
    EXPECT_EQ(ea.at, eb.at);  // bit-identical, not just close
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.link, eb.link);
    EXPECT_EQ(ea.node, eb.node);
    EXPECT_EQ(ea.ordinal, eb.ordinal);
    EXPECT_EQ(ea.multiplier, eb.multiplier);
  }
}

TEST(FaultSchedule, DifferentSeedsDiffer) {
  const net::Topology topo = net::make_internet2();
  const FaultSchedule a = make_schedule(topo, full_config(1));
  const FaultSchedule b = make_schedule(topo, full_config(2));
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.events()[i].at != b.events()[i].at) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultSchedule, EventsSortedAndWithinWindow) {
  const net::Topology topo = net::make_geant();
  ScheduleConfig cfg = full_config(7);
  cfg.start = 2.0;
  cfg.horizon = 6.0;
  const FaultSchedule schedule = make_schedule(topo, cfg);
  double prev = 0.0;
  for (const FaultEvent& e : schedule.events()) {
    EXPECT_GE(e.at, prev);
    prev = e.at;
    if (e.kind == FaultKind::kLinkUp) continue;  // downtime extends past it
    EXPECT_GE(e.at, cfg.start);
    EXPECT_LT(e.at, cfg.horizon);
  }
  EXPECT_EQ(schedule.horizon(), prev);
}

TEST(FaultSchedule, CountsAndKindsMatchConfig) {
  const net::Topology topo = net::make_internet2();
  const ScheduleConfig cfg = full_config(3);
  const FaultSchedule schedule = make_schedule(topo, cfg);
  // A flap compiles to 2 events (down + up) sharing one fault id.
  EXPECT_EQ(schedule.size(), cfg.total_faults() + cfg.link_flaps);
  EXPECT_EQ(schedule.num_faults(), cfg.total_faults());

  std::size_t crashes = 0, downs = 0, ups = 0, nodes = 0;
  for (const FaultEvent& e : schedule.events()) {
    switch (e.kind) {
      case FaultKind::kInstanceCrash: ++crashes; break;
      case FaultKind::kLinkDown: ++downs; break;
      case FaultKind::kLinkUp: ++ups; break;
      case FaultKind::kNodeDown:
        ++nodes;
        EXPECT_NE(e.node, net::kInvalidNode);
        break;
      default: break;
    }
  }
  // 2 plain crashes + 1 burst of 2.
  EXPECT_EQ(crashes, 4u);
  EXPECT_EQ(downs, 2u);
  EXPECT_EQ(ups, 2u);
  EXPECT_EQ(nodes, 1u);
}

TEST(FaultSchedule, FlapPairSharesIdAndOrdersDownBeforeUp) {
  const net::Topology topo = net::make_internet2();
  ScheduleConfig cfg;
  cfg.link_flaps = 3;
  const FaultSchedule schedule = make_schedule(topo, cfg);
  std::map<FaultId, std::pair<double, double>> pairs;  // id -> (down, up)
  for (const FaultEvent& e : schedule.events()) {
    if (e.kind == FaultKind::kLinkDown) pairs[e.fault_id].first = e.at;
    if (e.kind == FaultKind::kLinkUp) pairs[e.fault_id].second = e.at;
  }
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& [id, times] : pairs) {
    EXPECT_GE(times.second - times.first, cfg.link_downtime_min - 1e-12);
    EXPECT_LE(times.second - times.first, cfg.link_downtime_max + 1e-12);
  }
}

TEST(FaultSchedule, CorrelatedBurstIsSimultaneousWithDistinctIds) {
  const net::Topology topo = net::make_internet2();
  ScheduleConfig cfg;
  cfg.correlated_bursts = 1;
  const FaultSchedule schedule = make_schedule(topo, cfg);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule.events()[0].at, schedule.events()[1].at);
  EXPECT_NE(schedule.events()[0].fault_id, schedule.events()[1].fault_id);
}

TEST(FaultSchedule, RejectsImpossibleTargets) {
  net::Topology linkless;
  linkless.add_node("a", 8.0);
  ScheduleConfig links;
  links.link_flaps = 1;
  EXPECT_THROW(make_schedule(linkless, links), std::invalid_argument);

  net::Topology hostless;
  hostless.add_node("a");
  hostless.add_node("b");
  ScheduleConfig nodes;
  nodes.node_failures = 1;
  EXPECT_THROW(make_schedule(hostless, nodes), std::invalid_argument);
}

TEST(FaultSchedule, ValidateRejectsBadWindows) {
  ScheduleConfig cfg;
  cfg.start = 5.0;
  cfg.horizon = 5.0;  // empty window
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ScheduleConfig{};
  cfg.link_downtime_min = 2.0;
  cfg.link_downtime_max = 1.0;  // inverted
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ScheduleConfig{};
  cfg.slow_boot_multiplier = 0.5;  // a speed-UP is not a fault
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(FaultScheduleSpec, ParsesKeyValueList) {
  const ScheduleConfig cfg = parse_schedule_spec(
      "crashes=2,link-flaps=1,node-failures=1,boot-failures=3,slow-boots=1,"
      "rule-failures=2,bursts=1,seed=9,start=0.5,horizon=4");
  EXPECT_EQ(cfg.instance_crashes, 2u);
  EXPECT_EQ(cfg.link_flaps, 1u);
  EXPECT_EQ(cfg.node_failures, 1u);
  EXPECT_EQ(cfg.boot_failures, 3u);
  EXPECT_EQ(cfg.slow_boots, 1u);
  EXPECT_EQ(cfg.rule_install_failures, 2u);
  EXPECT_EQ(cfg.correlated_bursts, 1u);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.start, 0.5);
  EXPECT_DOUBLE_EQ(cfg.horizon, 4.0);
}

TEST(FaultScheduleSpec, EmptySpecKeepsBase) {
  ScheduleConfig base;
  base.instance_crashes = 5;
  const ScheduleConfig cfg = parse_schedule_spec("", base);
  EXPECT_EQ(cfg.instance_crashes, 5u);
}

TEST(FaultScheduleSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_schedule_spec("unknown=1"), std::invalid_argument);
  EXPECT_THROW(parse_schedule_spec("crashes"), std::invalid_argument);
  EXPECT_THROW(parse_schedule_spec("crashes=-1"), std::invalid_argument);
  EXPECT_THROW(parse_schedule_spec("crashes=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_schedule_spec("crashes=abc"), std::invalid_argument);
  EXPECT_THROW(parse_schedule_spec("start=3,horizon=2"),
               std::invalid_argument);
}

TEST(FaultKindNames, RoundTripAllKinds) {
  EXPECT_EQ(to_string(FaultKind::kLinkDown), "link-down");
  EXPECT_EQ(to_string(FaultKind::kRuleInstallFailure),
            "rule-install-failure");
  EXPECT_TRUE(is_ordinal(FaultKind::kBootFailure));
  EXPECT_TRUE(is_ordinal(FaultKind::kSlowBoot));
  EXPECT_TRUE(is_ordinal(FaultKind::kRuleInstallFailure));
  EXPECT_FALSE(is_ordinal(FaultKind::kLinkDown));
  EXPECT_FALSE(is_ordinal(FaultKind::kNodeDown));
  EXPECT_FALSE(is_ordinal(FaultKind::kInstanceCrash));
}

}  // namespace
}  // namespace apple::fault
