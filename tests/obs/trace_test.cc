// TraceSpan/ScopedTimer semantics against an injected clock, Chrome
// trace-event serialization round-trip, and APPLE_TRACE env parsing.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace apple::obs {
namespace {

TEST(TraceSpan, RecordsElapsedClockTimeIntoHistogram) {
  MetricsRegistry reg;
  double t = 5.0;
  reg.set_clock([&t] { return t; });
  {
    TraceSpan span(reg, "mod.comp.op_seconds");
    t = 5.75;
  }
  Histogram& h = reg.histogram("mod.comp.op_seconds");
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.75);
}

TEST(TraceSpan, EmitsTraceEventWhenSinkAttached) {
  MetricsRegistry reg;
  double t = 2.0;
  reg.set_clock([&t] { return t; });
  TraceSink sink;
  reg.set_trace_sink(&sink);
  {
    TraceSpan span(reg, "core.engine.place_seconds");
    t = 2.5;
  }
  reg.set_trace_sink(nullptr);
  {
    TraceSpan span(reg, "core.engine.unsinked_seconds");  // no sink: no event
    t = 3.0;
  }
  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& ev = events[0];
  EXPECT_EQ(ev.name, "core.engine.place_seconds");
  EXPECT_DOUBLE_EQ(ev.start_seconds, 2.0);
  EXPECT_DOUBLE_EQ(ev.duration_seconds, 0.5);
  // Both spans still landed in histograms.
  EXPECT_EQ(reg.histogram("core.engine.unsinked_seconds").count(), 1u);
}

TEST(TraceSink, ChromeTraceJsonRoundTrips) {
  TraceSink sink;
  sink.record({"lp.simplex.solve", "", 1.0, 0.25});
  sink.record({"custom", "mycat", 2.0, 0.5});
  sink.record({"nodots", "", 3.0, 0.125});

  const auto doc = json::parse(sink.chrome_trace_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const json::Value* unit = doc->find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");

  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 3u);

  const json::Value& first = events->items[0];
  EXPECT_EQ(first.find("name")->string, "lp.simplex.solve");
  EXPECT_EQ(first.find("cat")->string, "lp");  // default: module prefix
  EXPECT_EQ(first.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(first.find("ts")->number, 1e6);  // seconds -> us
  EXPECT_DOUBLE_EQ(first.find("dur")->number, 0.25e6);
  EXPECT_DOUBLE_EQ(first.find("pid")->number, 1.0);
  EXPECT_DOUBLE_EQ(first.find("tid")->number, 1.0);

  EXPECT_EQ(events->items[1].find("cat")->string, "mycat");  // explicit wins
  EXPECT_EQ(events->items[2].find("cat")->string, "app");    // dotless
}

TEST(TraceSink, ClearDropsEvents) {
  TraceSink sink;
  sink.record({"a.b", "", 0.0, 1.0});
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceSink, EmptySinkExportsAValidEmptyTrace) {
  // An untouched sink must still serialize to a loadable document — CI
  // uploads whatever the run produced, including "nothing happened".
  const TraceSink sink;
  const auto doc = json::parse(sink.chrome_trace_json());
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_TRUE(events->items.empty());
  const json::Value* unit = doc->find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
}

TEST(TraceSink, RetainsSpansNestedFarDeeperThanAnyBuffer) {
  // The sink is unbounded by design (the bounded structure is the flight
  // recorder's ring); 1000-deep recursion must keep every span, ordered by
  // completion (innermost first, since TraceSpan records on destruction).
  MetricsRegistry reg;
  double t = 0.0;
  reg.set_clock([&t] { return t += 0.001; });
  TraceSink sink;
  reg.set_trace_sink(&sink);
  constexpr int kDepth = 1000;
  const std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) return;
    TraceSpan span(reg, "obs.test.nested_seconds");
    recurse(depth - 1);
  };
  recurse(kDepth);
  reg.set_trace_sink(nullptr);

  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kDepth));
  // Completion order: every later event is an enclosing span, so starts
  // decrease and durations increase strictly.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i].start_seconds, events[i - 1].start_seconds);
    EXPECT_GT(events[i].duration_seconds, events[i - 1].duration_seconds);
  }
  EXPECT_EQ(reg.histogram("obs.test.nested_seconds").count(),
            static_cast<std::uint64_t>(kDepth));
}

TEST(TraceSink, ConcurrentSpansFromPoolWorkersAllLand) {
  // tsan workload: spans closing simultaneously on exec-pool workers while
  // the owning thread polls events(). record() serializes behind the
  // sink's mutex, so every span must land exactly once.
  MetricsRegistry reg;
  reg.set_clock([] { return 1.0; });
  TraceSink sink;
  reg.set_trace_sink(&sink);
  exec::ThreadPool pool(4);
  exec::TaskGroup group(pool);
  constexpr int kTasks = 64;
  constexpr int kSpansPerTask = 25;
  for (int i = 0; i < kTasks; ++i) {
    group.run([&reg] {
      for (int n = 0; n < kSpansPerTask; ++n) {
        TraceSpan span(reg, "obs.test.pool_span_seconds");
      }
    });
  }
  (void)sink.events();  // racing snapshot while workers record
  group.wait();
  reg.set_trace_sink(nullptr);

  EXPECT_EQ(sink.events().size(),
            static_cast<std::size_t>(kTasks * kSpansPerTask));
  EXPECT_EQ(reg.histogram("obs.test.pool_span_seconds").count(),
            static_cast<std::uint64_t>(kTasks * kSpansPerTask));
}

TEST(ScopedTimer, RecordsAgainstExplicitClock) {
  Histogram h({0.1, 1.0, 10.0});
  double t = 0.0;
  {
    ScopedTimer timer(h, Clock([&t] { return t; }));
    t = 0.5;
  }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);
  EXPECT_EQ(h.counts()[1], 1u);  // lands in the (0.1, 1] bucket
}

class ScopedTraceEnv {
 public:
  explicit ScopedTraceEnv(const char* value) {
    if (value == nullptr) {
      ::unsetenv("APPLE_TRACE");
    } else {
      ::setenv("APPLE_TRACE", value, /*overwrite=*/1);
    }
  }
  ~ScopedTraceEnv() { ::unsetenv("APPLE_TRACE"); }
};

TEST(TraceRequestFromEnv, DisabledWhenUnsetEmptyOrZero) {
  for (const char* value : {static_cast<const char*>(nullptr), "", "0"}) {
    ScopedTraceEnv env(value);
    const TraceRequest req = trace_request_from_env("default.json");
    EXPECT_FALSE(req.enabled);
  }
}

TEST(TraceRequestFromEnv, OneEnablesWithDefaultPath) {
  ScopedTraceEnv env("1");
  const TraceRequest req = trace_request_from_env("quickstart_trace.json");
  EXPECT_TRUE(req.enabled);
  EXPECT_EQ(req.path, "quickstart_trace.json");
}

TEST(TraceRequestFromEnv, PathLikeValuesBecomeThePath) {
  {
    ScopedTraceEnv env("/tmp/out.json");
    const TraceRequest req = trace_request_from_env("default.json");
    EXPECT_TRUE(req.enabled);
    EXPECT_EQ(req.path, "/tmp/out.json");
  }
  {
    ScopedTraceEnv env("mytrace.json");
    const TraceRequest req = trace_request_from_env("default.json");
    EXPECT_TRUE(req.enabled);
    EXPECT_EQ(req.path, "mytrace.json");
  }
}

}  // namespace
}  // namespace apple::obs
