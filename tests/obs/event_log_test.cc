// Flight-recorder semantics (DESIGN.md Sec. 13): interning, ring wrap,
// causal context (EpochScope / EventSpan nesting, propagation across
// exec::ThreadPool), exact counters past the wrap, journal determinism,
// reset, the runtime enable switch and the crash-dump path helpers. The
// concurrent cases double as the tsan workload for the per-thread rings.
#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace apple::obs {
namespace {

// Pulls every retained event out of journal_json() via the json parser so
// assertions read the same representation apple_trace consumes.
struct ParsedEvent {
  EventId id;
  EventPhase phase;
  double t;
  std::uint64_t epoch;
  std::uint64_t span;
  std::uint64_t arg;
};

std::vector<std::vector<ParsedEvent>> parse_threads(const EventLog& log) {
  const auto doc = json::parse(log.journal_json());
  EXPECT_TRUE(doc.has_value());
  std::vector<std::vector<ParsedEvent>> threads;
  const json::Value* journal = doc->find("journal");
  EXPECT_NE(journal, nullptr);
  const json::Value* arr = journal->find("threads");
  EXPECT_NE(arr, nullptr);
  for (const json::Value& th : arr->items) {
    std::vector<ParsedEvent> events;
    const json::Value* evs = th.find("events");
    EXPECT_NE(evs, nullptr);
    for (const json::Value& e : evs->items) {
      EXPECT_EQ(e.items.size(), 6u);
      events.push_back(
          {static_cast<EventId>(e.items[0].number),
           static_cast<EventPhase>(static_cast<int>(e.items[1].number)),
           e.items[2].number, static_cast<std::uint64_t>(e.items[3].number),
           static_cast<std::uint64_t>(e.items[4].number),
           static_cast<std::uint64_t>(e.items[5].number)});
    }
    threads.push_back(std::move(events));
  }
  return threads;
}

TEST(EventLog, InternDedupesAndNamesIndexById) {
  EventLog log(16);
  const EventId a = log.intern("core.pipeline.epoch");
  const EventId b = log.intern("lp.mip.solve");
  EXPECT_NE(a, b);
  EXPECT_EQ(log.intern("core.pipeline.epoch"), a);
  const std::vector<std::string> names = log.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[a], "core.pipeline.epoch");
  EXPECT_EQ(names[b], "lp.mip.solve");
}

TEST(EventLog, RecordsUnderInjectedClockWithContext) {
  EventLog log(16);
  double t = 1.0;
  log.set_clock([&t] { return t; });
  const EventId id = log.intern("fault.inject");
  log.record(id, EventPhase::kInstant, 7);
  t = 2.5;
  log.record(id, EventPhase::kInstant, 9);

  const auto threads = parse_threads(log);
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].size(), 2u);
  EXPECT_EQ(threads[0][0].id, id);
  EXPECT_DOUBLE_EQ(threads[0][0].t, 1.0);
  EXPECT_EQ(threads[0][0].arg, 7u);
  EXPECT_EQ(threads[0][0].epoch, 0u);  // outside any EpochScope
  EXPECT_DOUBLE_EQ(threads[0][1].t, 2.5);
  EXPECT_EQ(threads[0][1].arg, 9u);

  const EventLog::Stats stats = log.stats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.threads, 1u);
}

TEST(EventLog, RingKeepsLastNAndCountsDrops) {
  EventLog log(4);
  log.set_clock([] { return 0.0; });
  const EventId id = log.intern("dataplane.rules.install");
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.record(id, EventPhase::kInstant, i);
  }
  const EventLog::Stats stats = log.stats();
  EXPECT_EQ(stats.recorded, 10u);
  EXPECT_EQ(stats.dropped, 6u);

  // The journal retains exactly the last 4, oldest first.
  const auto threads = parse_threads(log);
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(threads[0][i].arg, 6u + i);
  }
}

TEST(EventLog, SpansNestAndCarryParentIds) {
  EventLog log(32);
  log.set_clock([] { return 0.0; });
  const EventId outer = log.intern("core.pipeline.epoch");
  const EventId inner = log.intern("core.pipeline.stage.place");
  {
    EpochScope epoch(log);
    EXPECT_EQ(epoch.epoch_id(), 1u);
    EventSpan a(log, outer);
    { EventSpan b(log, inner); }
  }

  const auto threads = parse_threads(log);
  ASSERT_EQ(threads.size(), 1u);
  const auto& evs = threads[0];
  // begin(outer), begin(inner), end(inner), end(outer).
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].id, outer);
  EXPECT_EQ(evs[0].phase, EventPhase::kBegin);
  EXPECT_EQ(evs[1].id, inner);
  EXPECT_EQ(evs[1].phase, EventPhase::kBegin);
  EXPECT_EQ(evs[2].id, inner);
  EXPECT_EQ(evs[2].phase, EventPhase::kEnd);
  EXPECT_EQ(evs[3].id, outer);
  EXPECT_EQ(evs[3].phase, EventPhase::kEnd);

  // Everything happened inside epoch 1; the inner span's events carry the
  // outer span as parent (arg) and their own id in `span`.
  for (const ParsedEvent& e : evs) EXPECT_EQ(e.epoch, 1u);
  EXPECT_EQ(evs[0].span, 1u);
  EXPECT_EQ(evs[0].arg, 0u);  // outer has no parent span
  EXPECT_EQ(evs[1].span, 2u);
  EXPECT_EQ(evs[1].arg, 1u);  // inner's parent is the outer span
  EXPECT_EQ(evs[2].span, 2u);
  EXPECT_EQ(evs[3].span, 1u);
}

TEST(EventLog, SpansNestedDeeperThanTheRingStayBalancedInTotals) {
  // 8 spans nested inside each other against a 4-slot ring: the journal
  // can only retain the innermost end of the timeline, but the per-name
  // totals still count every begin and end.
  EventLog log(4);
  log.set_clock([] { return 0.0; });
  const EventId id = log.intern("lp.mip.solve");
  const std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) return;
    const EventSpan span(log, id);
    recurse(depth - 1);
  };
  recurse(8);  // 8 begins going in, 8 ends unwinding

  const EventLog::Stats stats = log.stats();
  EXPECT_EQ(stats.recorded, 16u);
  EXPECT_EQ(stats.dropped, 12u);

  MetricsRegistry reg;
  log.export_counters(reg);
  EXPECT_DOUBLE_EQ(reg.counter("obs.event.lp.mip.solve").value(), 16.0);

  // The retained tail is the last four ends, unwinding inner -> outer.
  const auto threads = parse_threads(log);
  ASSERT_EQ(threads[0].size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(threads[0][i].phase, EventPhase::kEnd);
    EXPECT_EQ(threads[0][i].span, 4u - i);
  }
}

TEST(EventLog, ExportCountersIsExactPastWrapAndIdempotent) {
  EventLog log(2);
  log.set_clock([] { return 0.0; });
  const EventId a = log.intern("orch.lifecycle.launch");
  const EventId b = log.intern("orch.lifecycle.retire");
  for (int i = 0; i < 5; ++i) log.record(a, EventPhase::kInstant, 0);
  log.record(b, EventPhase::kInstant, 0);

  MetricsRegistry reg;
  log.export_counters(reg);
  log.export_counters(reg);  // re-export must not double-count
  EXPECT_DOUBLE_EQ(reg.counter("obs.event.orch.lifecycle.launch").value(),
                   5.0);
  EXPECT_DOUBLE_EQ(reg.counter("obs.event.orch.lifecycle.retire").value(),
                   1.0);
}

TEST(EventLog, DisabledRecordingConsumesNoIdsAndDropsEvents) {
  EventLog log(16);
  log.set_clock([] { return 0.0; });
  const EventId id = log.intern("core.pipeline.epoch");
  log.set_enabled(false);
  log.record(id, EventPhase::kInstant, 0);
  {
    // Inactive scopes must not consume epoch/span ids, so id streams stay
    // deterministic across recording-off stretches.
    EpochScope epoch(log);
    EXPECT_EQ(epoch.epoch_id(), 0u);
    EventSpan span(log, id);
    EXPECT_EQ(current_context().epoch, 0u);
  }
  log.set_enabled(true);
  EXPECT_EQ(log.stats().recorded, 0u);
  {
    EpochScope epoch(log);
    EXPECT_EQ(epoch.epoch_id(), 1u);  // first id ever allocated
  }
}

TEST(EventLog, ResetClearsRingsAndIdCountersButKeepsInterning) {
  EventLog log(8);
  log.set_clock([] { return 0.0; });
  const EventId id = log.intern("fault.detect");
  { EpochScope epoch(log); log.record(id, EventPhase::kInstant, 0); }
  ASSERT_GT(log.stats().recorded, 0u);

  log.reset();
  EXPECT_EQ(log.stats().recorded, 0u);
  EXPECT_EQ(log.stats().dropped, 0u);
  EXPECT_EQ(log.intern("fault.detect"), id);  // intern table survives
  MetricsRegistry reg;
  log.export_counters(reg);
  EXPECT_DOUBLE_EQ(reg.counter("obs.event.fault.detect").value(), 0.0);
  {
    EpochScope epoch(log);
    EXPECT_EQ(epoch.epoch_id(), 1u);  // id streams restart
  }
}

TEST(EventLog, JournalIsByteIdenticalAcrossIdenticalRuns) {
  const auto run = [](EventLog& log) {
    double t = 0.0;
    log.set_clock([&t] { return t += 0.125; });
    const EventId stage = log.intern("core.pipeline.stage.place");
    EpochScope epoch(log);
    EventSpan span(log, stage);
    log.record(log.intern("lp.mip.node.solve"), EventPhase::kInstant, 3);
  };
  EventLog first(16);
  run(first);
  EventLog second(16);
  run(second);
  EXPECT_EQ(first.journal_json(), second.journal_json());

  // And an in-place reset replays to the same journal.
  const std::string before = first.journal_json();
  first.reset();
  run(first);
  EXPECT_EQ(first.journal_json(), before);
}

TEST(EventLog, ThreadPoolTasksInheritTheSubmittersContext) {
  EventLog& log = default_event_log();
  log.reset();
  exec::ThreadPool pool(2);
  std::atomic<std::uint64_t> seen_epoch{0};
  std::atomic<std::uint64_t> seen_span{0};
  {
    EpochScope epoch(log);
    const EventId id = log.intern("core.pipeline.stage.place");
    EventSpan span(log, id);
    exec::TaskGroup group(pool);
    group.run([&] {
      seen_epoch = current_context().epoch;
      seen_span = current_context().span;
    });
    group.wait();
  }
  EXPECT_EQ(seen_epoch.load(), 1u);
  EXPECT_EQ(seen_span.load(), 1u);
  // Outside the scopes the submitting thread's context is restored.
  EXPECT_EQ(current_context().epoch, 0u);
  EXPECT_EQ(current_context().span, 0u);
  log.reset();
}

TEST(EventLog, ConcurrentRecordingKeepsPerThreadRingsIntact) {
  // tsan workload: four threads hammer one log while the main thread
  // toggles the enable switch and interns new names. Each recording
  // thread's ring must come out internally consistent (its own events, in
  // its own order).
  EventLog log(64);
  log.set_clock([] { return 0.0; });
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<EventId> ids;
  ids.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ids.push_back(log.intern("obs.test.worker" + std::to_string(i) + ".tick"));
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&log, id = ids[i]] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) {
        log.record(id, EventPhase::kInstant, n);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    log.set_enabled(true);  // racing relaxed toggles; recording stays on
    log.intern("obs.test.latecomer" + std::to_string(i) + ".name");
    (void)log.stats();
  }
  for (std::thread& w : workers) w.join();

  const EventLog::Stats stats = log.stats();
  EXPECT_EQ(stats.recorded, kThreads * kPerThread);
  EXPECT_EQ(stats.threads, static_cast<std::size_t>(kThreads));
  const auto threads = parse_threads(log);
  ASSERT_EQ(threads.size(), static_cast<std::size_t>(kThreads));
  for (const auto& ring : threads) {
    ASSERT_EQ(ring.size(), 64u);
    // One name per worker and strictly increasing args => no cross-thread
    // interleaving leaked into the ring.
    for (std::size_t i = 1; i < ring.size(); ++i) {
      EXPECT_EQ(ring[i].id, ring[0].id);
      EXPECT_EQ(ring[i].arg, ring[i - 1].arg + 1);
    }
  }
}

TEST(FlightDump, PathFollowsThePrefix) {
  const std::string saved = flight_dump_prefix();
  set_flight_dump_prefix("flight_unittest");
  EXPECT_EQ(flight_dump_prefix(), "flight_unittest");
  const std::string path = flight_dump_path();
  EXPECT_EQ(path.rfind("flight_unittest_", 0), 0u);
  EXPECT_EQ(path.substr(path.size() - 5), ".json");
  set_flight_dump_prefix(saved);
}

}  // namespace
}  // namespace apple::obs
