// Counter/gauge/histogram semantics plus the registry contract the
// APPLE_OBS_* macros rely on (stable references, name validation,
// reset-in-place) and the JSON snapshot round-trip.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "obs/json.h"

namespace apple::obs {
namespace {

// Contract violations (bad bounds, NaN observations, invalid names) fire
// APPLE_CHECK; rethrow them as exceptions so each case is testable without
// a death-test fork.
class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(common::set_check_failure_handler(
            [](const std::string& message) {
              throw std::runtime_error(message);
            })) {}
  ~ScopedThrowingHandler() { common::set_check_failure_handler(previous_); }

 private:
  common::CheckFailureHandler previous_;
};

TEST(Counter, SaturatesInsteadOfWrapping) {
  Counter c;
  c.add(Counter::kMax - 1);
  EXPECT_FALSE(c.saturated());
  c.add(10);  // would wrap an unguarded uint64
  EXPECT_EQ(c.value(), Counter::kMax);
  EXPECT_TRUE(c.saturated());
  c.add(1);  // stays pinned
  EXPECT_EQ(c.value(), Counter::kMax);
}

TEST(Gauge, SetMaxKeepsHighWater) {
  Gauge g;
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(Histogram, EmptyReadsAllZero) {
  const Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  ScopedThrowingHandler guard;
  EXPECT_THROW(Histogram({}), std::runtime_error);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::runtime_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::runtime_error);
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               std::runtime_error);
}

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(1.0);  // exactly a bound: counts into that bound's bucket
  h.observe(1.5);
  h.observe(2.0);
  h.observe(100.0);  // overflow bucket
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);  // (<=1]
  EXPECT_EQ(h.counts()[1], 2u);  // (1,2]
  EXPECT_EQ(h.counts()[2], 0u);  // (2,4]
  EXPECT_EQ(h.counts()[3], 1u);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, QuantilesInterpolateAndClampToObservedRange) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) {
    h.observe(15.0);  // all mass in the (10, 20] bucket
  }
  // Every quantile must stay inside [min, max] = [15, 15] despite the
  // interpolation across the bucket's [10, 20] span.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 15.0);
}

TEST(Histogram, QuantileEdgesAcrossBuckets) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  for (int b = 0; b < 4; ++b) {
    for (int i = 0; i < 25; ++i) {
      h.observe(static_cast<double>(b) + 0.5);
    }
  }
  // 100 samples evenly over four buckets: p50 falls at the second bucket's
  // upper edge, p95/p99 in the fourth.
  EXPECT_NEAR(h.quantile(0.5), 2.0, 0.25);
  EXPECT_GE(h.quantile(0.95), 3.0);
  EXPECT_LE(h.quantile(0.99), 4.0);
  // Monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Histogram, OverflowQuantileInterpolatesTowardObservedMax) {
  Histogram h({1.0});
  h.observe(50.0);
  h.observe(90.0);
  EXPECT_LE(h.quantile(0.99), 90.0);
  EXPECT_GE(h.quantile(0.99), 50.0);
}

TEST(Histogram, RejectsNanObservation) {
  ScopedThrowingHandler guard;
  Histogram h({1.0});
  EXPECT_THROW(h.observe(std::nan("")), std::runtime_error);
  EXPECT_EQ(h.count(), 0u);  // the rejected sample left no trace
}

TEST(Registry, ValidatesMetricNames) {
  ScopedThrowingHandler guard;
  MetricsRegistry reg;
  EXPECT_NO_THROW(reg.counter("lp.simplex.iterations"));
  EXPECT_NO_THROW(reg.gauge("a.b_c.d0"));
  EXPECT_THROW(reg.counter("nodots"), std::runtime_error);
  EXPECT_THROW(reg.counter(""), std::runtime_error);
  EXPECT_THROW(reg.counter(".leading"), std::runtime_error);
  EXPECT_THROW(reg.counter("trailing."), std::runtime_error);
  EXPECT_THROW(reg.counter("Upper.case"), std::runtime_error);
  EXPECT_THROW(reg.counter("sp ace.x"), std::runtime_error);
}

TEST(Registry, ReferencesSurviveInsertsAndResetValues) {
  MetricsRegistry reg;
  Counter& a = reg.counter("t.a");
  a.add(5);
  // Force rebalancing pressure on the underlying map.
  for (int i = 0; i < 100; ++i) {
    reg.counter("t.filler_" + std::to_string(i));
  }
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(&a, &reg.counter("t.a"));

  Histogram& h = reg.histogram("t.h", {1.0, 2.0});
  h.observe(1.5);
  reg.reset_values();
  EXPECT_EQ(a.value(), 0u);  // zeroed in place, reference still valid
  EXPECT_EQ(h.count(), 0u);
  a.add(1);
  EXPECT_EQ(reg.counter("t.a").value(), 1u);
}

TEST(Registry, HistogramBoundsFixedOnFirstCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.h", {1.0, 2.0});
  Histogram& again = reg.histogram("t.h", {50.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

TEST(Registry, SnapshotJsonRoundTrips) {
  MetricsRegistry reg;
  reg.counter("m.c.events").add(3);
  reg.gauge("m.g.depth").set(2.5);
  Histogram& h = reg.histogram("m.h.latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const auto doc = json::parse(reg.snapshot_json());
  ASSERT_TRUE(doc.has_value());

  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* events = counters->find("m.c.events");
  ASSERT_NE(events, nullptr);
  EXPECT_DOUBLE_EQ(events->number, 3.0);

  const json::Value* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("m.g.depth")->number, 2.5);

  const json::Value* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* lat = hists->find("m.h.latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(lat->find("sum")->number, 11.0);
  EXPECT_DOUBLE_EQ(lat->find("min")->number, 0.5);
  EXPECT_DOUBLE_EQ(lat->find("max")->number, 9.0);
  ASSERT_NE(lat->find("p50"), nullptr);
  ASSERT_NE(lat->find("p95"), nullptr);
  ASSERT_NE(lat->find("p99"), nullptr);
  const json::Value* buckets = lat->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Empty buckets are skipped; the three populated ones (le=1, le=2, +Inf)
  // appear in bound order.
  ASSERT_EQ(buckets->items.size(), 3u);
  EXPECT_EQ(buckets->items[2].find("le")->string, "+Inf");
  EXPECT_DOUBLE_EQ(buckets->items[2].find("count")->number, 1.0);
}

TEST(Registry, InjectedClockDrivesClockNow) {
  MetricsRegistry reg;
  double t = 10.0;
  reg.set_clock([&t] { return t; });
  EXPECT_DOUBLE_EQ(reg.clock_now(), 10.0);
  t = 12.5;
  EXPECT_DOUBLE_EQ(reg.clock_now(), 12.5);
}

TEST(DefaultBuckets, AreStrictlyIncreasing) {
  for (const auto& ladder :
       {default_time_buckets_seconds(), default_size_buckets()}) {
    ASSERT_FALSE(ladder.empty());
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_LT(ladder[i - 1], ladder[i]);
    }
  }
}

TEST(RunningStat, TracksMinMeanMax) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.observe(2.0);
  s.observe(4.0);
  s.observe(12.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 12.0);
  EXPECT_DOUBLE_EQ(s.mean(), 6.0);
}

TEST(Stopwatch, ReadsInjectedClock) {
  double t = 100.0;
  Stopwatch sw{Clock([&t] { return t; })};
  t = 103.5;
  EXPECT_DOUBLE_EQ(sw.elapsed_seconds(), 3.5);
  sw.restart();
  t = 104.0;
  EXPECT_DOUBLE_EQ(sw.elapsed_seconds(), 0.5);
}

}  // namespace
}  // namespace apple::obs
