// Side-effect canary for the APPLE_ENABLE_METRICS=OFF macro path.
//
// This TU forces the disabled branch of obs/obs.h regardless of how the
// tree was configured, then passes side-effecting expressions to every
// APPLE_OBS_* macro. The contract is that disabled macros still
// type-check their arguments but evaluate them ZERO times — if any
// argument runs, the canary counters move and the test fails. This is
// what makes it safe to instrument hot paths.
//
// apple-analyze: allow-file(metric-name): the canary deliberately feeds
// runtime-built names to every macro to prove the disabled build evaluates
// them zero times; no interned id is ever created here.
#ifdef APPLE_ENABLE_METRICS
#undef APPLE_ENABLE_METRICS
#endif
#define APPLE_ENABLE_METRICS 0
#include "obs/obs.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace apple::obs {
namespace {

int g_name_evals = 0;
int g_value_evals = 0;

const char* canary_name() {
  ++g_name_evals;
  return "canary.should.never_resolve";
}

double canary_value() {
  ++g_value_evals;
  return 1.0;
}

TEST(DisabledMacros, EvaluateArgumentsZeroTimes) {
  g_name_evals = 0;
  g_value_evals = 0;

  APPLE_OBS_COUNT(canary_name());
  APPLE_OBS_COUNT_N(canary_name(), canary_value());
  APPLE_OBS_GAUGE_SET(canary_name(), canary_value());
  APPLE_OBS_GAUGE_MAX(canary_name(), canary_value());
  APPLE_OBS_OBSERVE(canary_name(), canary_value());
  APPLE_OBS_OBSERVE_SIZE(canary_name(), canary_value());
  APPLE_OBS_SPAN(canary_name());

  EXPECT_EQ(g_name_evals, 0);
  EXPECT_EQ(g_value_evals, 0);
}

TEST(DisabledMacros, LeaveTheDefaultRegistryUntouched) {
  // The macros must not create instruments either: a disabled build should
  // never grow the registry.
  bool found = false;
  default_registry().for_each_counter(
      [&found](const std::string& name, const Counter&) {
        if (name.rfind("canary.", 0) == 0) found = true;
      });
  default_registry().for_each_histogram(
      [&found](const std::string& name, const Histogram&) {
        if (name.rfind("canary.", 0) == 0) found = true;
      });
  EXPECT_FALSE(found);
}

TEST(DisabledMacros, ComposeInsideControlFlow) {
  // Macros must stay single-statement-safe (usable as an un-braced if
  // body) in the disabled build too.
  const bool flag = true;
  if (flag)
    APPLE_OBS_COUNT(canary_name());
  else
    APPLE_OBS_COUNT(canary_name());
  for (int i = 0; i < 3; ++i) APPLE_OBS_OBSERVE(canary_name(), canary_value());
  EXPECT_EQ(g_name_evals, 0);
  EXPECT_EQ(g_value_evals, 0);
}

}  // namespace
}  // namespace apple::obs
