// Writer/parser round-trip for the obs JSON layer: the exporters are only
// trustworthy if everything the Writer emits parses back unchanged.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace apple::obs::json {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(escape("lp.simplex.iterations"), "lp.simplex.iterations");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonFormatDouble, FiniteValuesRoundTrip) {
  for (const double v : {0.0, 1.0, -2.5, 1e-9, 123456789.123456, 4.2e17}) {
    const auto parsed = parse(format_double(v));
    ASSERT_TRUE(parsed.has_value()) << format_double(v);
    ASSERT_TRUE(parsed->is_number());
    EXPECT_DOUBLE_EQ(parsed->number, v);
  }
}

TEST(JsonFormatDouble, NonFiniteClampsToZero) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(format_double(std::nan("")), "0");
}

TEST(JsonWriter, NestedDocumentParsesBack) {
  Writer w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  w.key("lp.simplex.iterations");
  w.value(std::uint64_t{42});
  w.end_object();
  w.key("series");
  w.begin_array();
  w.value(1.5);
  w.value("two");
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();

  const auto doc = parse(w.take());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());

  const Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const Value* iters = counters->find("lp.simplex.iterations");
  ASSERT_NE(iters, nullptr);
  EXPECT_DOUBLE_EQ(iters->number, 42.0);

  const Value* series = doc->find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_TRUE(series->is_array());
  ASSERT_EQ(series->items.size(), 4u);
  EXPECT_DOUBLE_EQ(series->items[0].number, 1.5);
  EXPECT_EQ(series->items[1].string, "two");
  EXPECT_TRUE(series->items[2].boolean);
  EXPECT_EQ(series->items[3].kind, Value::Kind::kNull);
}

TEST(JsonWriter, EscapedKeyRoundTrips) {
  Writer w;
  w.begin_object();
  w.key("we\"ird\nkey");
  w.value("va\\lue");
  w.end_object();
  const auto doc = parse(w.take());
  ASSERT_TRUE(doc.has_value());
  const Value* v = doc->find("we\"ird\nkey");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->string, "va\\lue");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("{").has_value());
  EXPECT_FALSE(parse("[1,]").has_value());
  EXPECT_FALSE(parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parse("{'a':1}").has_value());
  EXPECT_FALSE(parse("{\"a\"}").has_value());
}

TEST(JsonParse, HandlesUnicodeEscapes) {
  const auto doc = parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string, "A\xc3\xa9");  // 'A' + e-acute in UTF-8
}

}  // namespace
}  // namespace apple::obs::json
