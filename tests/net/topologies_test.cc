#include "net/topologies.h"

#include <gtest/gtest.h>

#include "net/routing.h"

namespace apple::net {
namespace {

// The paper's evaluation topologies (Sec. IX-A) with their published sizes.
struct TopoCase {
  const char* label;
  Topology (*make)(double);
  std::size_t nodes;
  std::size_t links;
};

class EvaluationTopologies : public ::testing::TestWithParam<TopoCase> {};

TEST_P(EvaluationTopologies, MatchesPublishedSize) {
  const TopoCase& tc = GetParam();
  const Topology t = tc.make(kDefaultHostCores);
  EXPECT_EQ(t.num_nodes(), tc.nodes) << tc.label;
  EXPECT_EQ(t.num_links(), tc.links) << tc.label;
}

TEST_P(EvaluationTopologies, IsConnected) {
  const Topology t = GetParam().make(kDefaultHostCores);
  EXPECT_TRUE(t.is_connected());
}

TEST_P(EvaluationTopologies, EveryNodeHasAppleHost) {
  const Topology t = GetParam().make(64.0);
  for (const Node& n : t.nodes()) {
    EXPECT_DOUBLE_EQ(n.host_cores, 64.0) << n.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, EvaluationTopologies,
    ::testing::Values(TopoCase{"Internet2", make_internet2, 12, 15},
                      TopoCase{"GEANT", make_geant, 23, 37},
                      TopoCase{"UNIV1", make_univ1, 23, 43},
                      TopoCase{"AS3679", make_as3679, 79, 147}),
    [](const auto& param_info) { return std::string(param_info.param.label); });

TEST(Internet2, HasAbileneBackboneShape) {
  const Topology t = make_internet2();
  // Spot-check well-known adjacencies.
  const NodeId chin = t.find_node("CHIN");
  const NodeId ipls = t.find_node("IPLS");
  const NodeId nycm = t.find_node("NYCM");
  ASSERT_NE(chin, kInvalidNode);
  EXPECT_TRUE(t.find_link(chin, ipls).has_value());
  EXPECT_TRUE(t.find_link(chin, nycm).has_value());
}

TEST(Univ1, TwoTierStructure) {
  const Topology t = make_univ1();
  const NodeId c1 = t.find_node("core-1");
  const NodeId c2 = t.find_node("core-2");
  ASSERT_NE(c1, kInvalidNode);
  ASSERT_NE(c2, kInvalidNode);
  EXPECT_TRUE(t.find_link(c1, c2).has_value());
  // Each core connects to all 21 edges plus the peer core.
  EXPECT_EQ(t.incident_links(c1).size(), 22u);
  EXPECT_EQ(t.incident_links(c2).size(), 22u);
  // Edge switches are exactly 2 hops apart (edge-core-edge).
  const AllPairsPaths apsp(t);
  const NodeId e1 = t.find_node("edge-1");
  const NodeId e2 = t.find_node("edge-2");
  EXPECT_DOUBLE_EQ(apsp.distance(e1, e2), 2.0);
}

TEST(As3679, Deterministic) {
  const Topology a = make_as3679();
  const Topology b = make_as3679();
  ASSERT_EQ(a.num_links(), b.num_links());
  for (std::size_t l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.link(static_cast<LinkId>(l)).a,
              b.link(static_cast<LinkId>(l)).a);
    EXPECT_EQ(a.link(static_cast<LinkId>(l)).b,
              b.link(static_cast<LinkId>(l)).b);
  }
}

TEST(SyntheticHelpers, Shapes) {
  EXPECT_EQ(make_line(6).num_links(), 5u);
  EXPECT_EQ(make_ring(6).num_links(), 6u);
  EXPECT_EQ(make_star(7).num_nodes(), 8u);
  EXPECT_EQ(make_star(7).num_links(), 7u);
  const Topology g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_links(), 3u * 3u + 2u * 4u);  // horizontal + vertical
  EXPECT_TRUE(g.is_connected());
}

TEST(SyntheticHelpers, RingRejectsTiny) {
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(PreferentialAttachment, ExactSizesAndConnected) {
  const Topology t = make_preferential_attachment(40, 90, 7);
  EXPECT_EQ(t.num_nodes(), 40u);
  EXPECT_EQ(t.num_links(), 90u);
  EXPECT_TRUE(t.is_connected());
}

TEST(PreferentialAttachment, RejectsInfeasibleLinkCount) {
  EXPECT_THROW(make_preferential_attachment(40, 10, 7),
               std::invalid_argument);
  EXPECT_THROW(make_preferential_attachment(2, 1, 7), std::invalid_argument);
}

}  // namespace
}  // namespace apple::net
