#include "net/topology_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/topologies.h"

namespace apple::net {
namespace {

TEST(TopologyIo, ParsesBasicFile) {
  std::istringstream in(R"(# a comment
topology demo
node a 64
node b
link a b 500 2
)");
  const Topology t = load_topology(in);
  EXPECT_EQ(t.name(), "demo");
  ASSERT_EQ(t.num_nodes(), 2u);
  EXPECT_DOUBLE_EQ(t.node(0).host_cores, 64.0);
  EXPECT_DOUBLE_EQ(t.node(1).host_cores, 0.0);
  ASSERT_EQ(t.num_links(), 1u);
  EXPECT_DOUBLE_EQ(t.link(0).capacity_mbps, 500.0);
  EXPECT_DOUBLE_EQ(t.link(0).weight, 2.0);
}

TEST(TopologyIo, RoundTripsEvaluationTopology) {
  const Topology original = make_internet2();
  std::stringstream buf;
  save_topology(original, buf);
  const Topology parsed = load_topology(buf);
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.num_nodes(), original.num_nodes());
  ASSERT_EQ(parsed.num_links(), original.num_links());
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    EXPECT_EQ(parsed.node(static_cast<NodeId>(i)).name,
              original.node(static_cast<NodeId>(i)).name);
  }
  for (std::size_t l = 0; l < original.num_links(); ++l) {
    EXPECT_EQ(parsed.link(static_cast<LinkId>(l)).a,
              original.link(static_cast<LinkId>(l)).a);
    EXPECT_EQ(parsed.link(static_cast<LinkId>(l)).b,
              original.link(static_cast<LinkId>(l)).b);
  }
}

TEST(TopologyIo, RejectsUnknownKeyword) {
  std::istringstream in("switch a\n");
  EXPECT_THROW(load_topology(in), std::runtime_error);
}

TEST(TopologyIo, RejectsDuplicateNode) {
  std::istringstream in("node a\nnode a\n");
  EXPECT_THROW(load_topology(in), std::runtime_error);
}

TEST(TopologyIo, RejectsLinkToUnknownNode) {
  std::istringstream in("node a\nlink a ghost\n");
  EXPECT_THROW(load_topology(in), std::runtime_error);
}

TEST(TopologyIo, ReportsLineNumbers) {
  std::istringstream in("node a\nnode b\nbogus x\n");
  try {
    load_topology(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace apple::net
