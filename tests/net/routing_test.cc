#include "net/routing.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace apple::net {
namespace {

TEST(ShortestPathTree, LineDistances) {
  const Topology t = make_line(5);
  const ShortestPathTree spt(t, 0);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(spt.distance(i), static_cast<double>(i));
  }
  const auto p = spt.path_to(4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 1, 2, 3, 4}));
}

TEST(ShortestPathTree, UnreachableNode) {
  Topology t;
  t.add_node("a");
  t.add_node("b");
  const ShortestPathTree spt(t, 0);
  EXPECT_FALSE(spt.reachable(1));
  EXPECT_FALSE(spt.path_to(1).has_value());
}

TEST(ShortestPathTree, RespectsWeights) {
  // Triangle where the direct edge is more expensive than the detour.
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const NodeId c = t.add_node("c");
  t.add_link(a, c, 1000.0, 10.0);
  t.add_link(a, b, 1000.0, 1.0);
  t.add_link(b, c, 1000.0, 1.0);
  const ShortestPathTree spt(t, a);
  EXPECT_DOUBLE_EQ(spt.distance(c), 2.0);
  EXPECT_EQ(*spt.path_to(c), (Path{a, b, c}));
}

TEST(ShortestPathTree, SourceToItself) {
  const Topology t = make_line(3);
  const ShortestPathTree spt(t, 1);
  const auto p = spt.path_to(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{1}));
}

TEST(ShortestPathTree, InvalidSourceThrows) {
  const Topology t = make_line(3);
  EXPECT_THROW(ShortestPathTree(t, 7), std::out_of_range);
}

TEST(AllPairsPaths, SymmetricDistancesOnUnweightedGraph) {
  const Topology t = make_internet2();
  const AllPairsPaths apsp(t);
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      EXPECT_DOUBLE_EQ(apsp.distance(s, d), apsp.distance(d, s));
    }
  }
}

TEST(AllPairsPaths, PathsAreValidSimplePaths) {
  const Topology t = make_geant();
  const AllPairsPaths apsp(t);
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      const auto p = apsp.path(s, d);
      ASSERT_TRUE(p.has_value()) << s << "->" << d;
      EXPECT_TRUE(is_valid_simple_path(t, *p));
      EXPECT_EQ(p->front(), s);
      EXPECT_EQ(p->back(), d);
    }
  }
}

TEST(AllPairsPaths, Deterministic) {
  const Topology t = make_univ1();
  const AllPairsPaths a(t), b(t);
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      EXPECT_EQ(a.path(s, d), b.path(s, d));
    }
  }
}

TEST(PathHelpers, HopCount) {
  EXPECT_EQ(hop_count({}), 0u);
  EXPECT_EQ(hop_count({3}), 0u);
  EXPECT_EQ(hop_count({3, 4, 5}), 2u);
}

TEST(PathHelpers, ValidSimplePath) {
  const Topology t = make_line(4);
  EXPECT_TRUE(is_valid_simple_path(t, {0, 1, 2}));
  EXPECT_FALSE(is_valid_simple_path(t, {}));
  EXPECT_FALSE(is_valid_simple_path(t, {0, 2}));     // not adjacent
  EXPECT_FALSE(is_valid_simple_path(t, {0, 1, 0}));  // repeated node
  EXPECT_FALSE(is_valid_simple_path(t, {0, 9}));     // out of range
}

TEST(PathAlive, TracksLinkState) {
  Topology t = make_line(4);
  const Path path{0, 1, 2, 3};
  EXPECT_TRUE(path_alive(t, path));

  const LinkId middle = *t.find_link(1, 2);
  t.set_link_state(middle, false);
  EXPECT_FALSE(path_alive(t, path));
  EXPECT_TRUE(path_alive(t, {0, 1}));   // up segment before the failure
  EXPECT_TRUE(path_alive(t, {2, 3}));   // up segment after the failure
  EXPECT_FALSE(t.is_connected());

  t.set_link_state(middle, true);
  EXPECT_TRUE(path_alive(t, path));
  EXPECT_TRUE(t.is_connected());
}

TEST(PathAlive, MultigraphSurvivesOneParallelLinkFailing) {
  Topology t;
  t.add_node("a");
  t.add_node("b");
  const LinkId first = t.add_link(0, 1);
  const LinkId second = t.add_link(0, 1);
  t.set_link_state(first, false);
  // A hop is alive while ANY parallel link is up.
  EXPECT_TRUE(path_alive(t, {0, 1}));
  t.set_link_state(second, false);
  EXPECT_FALSE(path_alive(t, {0, 1}));
}

TEST(ShortestPathTree, SkipsDownLinks) {
  // Ring of 4: two equal-cost routes 0->2. Killing one side forces the
  // other; killing both isolates node 2.
  const Topology base = make_ring(4);
  Topology t = base;
  const LinkId l01 = *t.find_link(0, 1);
  const LinkId l12 = *t.find_link(1, 2);
  t.set_link_state(l01, false);
  const ShortestPathTree around(t, 0);
  ASSERT_TRUE(around.reachable(2));
  EXPECT_EQ(*around.path_to(2), (Path{0, 3, 2}));

  t.set_link_state(l12, false);
  t.set_link_state(l01, true);
  const ShortestPathTree other_way(t, 0);
  ASSERT_TRUE(other_way.reachable(2));
  EXPECT_EQ(*other_way.path_to(2), (Path{0, 3, 2}));

  t.set_link_state(l01, false);  // both down: node 1 is fully cut off
  const ShortestPathTree cut(t, 0);
  EXPECT_TRUE(cut.reachable(3));
  EXPECT_TRUE(cut.reachable(2));  // still alive the long way round
  EXPECT_FALSE(cut.reachable(1));
}

}  // namespace
}  // namespace apple::net
