#include <gtest/gtest.h>

#include <algorithm>

#include "net/routing.h"
#include "net/topologies.h"

namespace apple::net {
namespace {

TEST(EcmpNodeUnion, LineHasExactlyThePath) {
  const Topology t = make_line(5);
  const AllPairsPaths paths(t);
  const auto unio = ecmp_node_union(paths, t.num_nodes(), 0, 4);
  EXPECT_EQ(unio, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(EcmpNodeUnion, Univ1EdgePairSeesBothCores) {
  const Topology t = make_univ1();
  const AllPairsPaths paths(t);
  const NodeId e1 = t.find_node("edge-1");
  const NodeId e2 = t.find_node("edge-2");
  const auto unio = ecmp_node_union(paths, t.num_nodes(), e1, e2);
  // Both cores are on equal-cost paths between any two edge switches.
  EXPECT_NE(std::find(unio.begin(), unio.end(), t.find_node("core-1")),
            unio.end());
  EXPECT_NE(std::find(unio.begin(), unio.end(), t.find_node("core-2")),
            unio.end());
  EXPECT_EQ(unio.size(), 4u);  // e1, core-1, core-2, e2
}

TEST(EcmpNodeUnion, RingHasTwoEqualPathsBetweenAntipodes) {
  const Topology t = make_ring(6);
  const AllPairsPaths paths(t);
  // Antipodal nodes 0 and 3: both 3-hop arcs are shortest.
  const auto unio = ecmp_node_union(paths, t.num_nodes(), 0, 3);
  EXPECT_EQ(unio.size(), 6u);  // the whole ring
}

TEST(EcmpNodeUnion, SelfPairIsJustTheNode) {
  const Topology t = make_line(3);
  const AllPairsPaths paths(t);
  const auto unio = ecmp_node_union(paths, t.num_nodes(), 1, 1);
  EXPECT_EQ(unio, (std::vector<NodeId>{1}));
}

TEST(EcmpNodeUnion, DisconnectedPairIsEmpty) {
  Topology t;
  t.add_node("a");
  t.add_node("b");
  const AllPairsPaths paths(t);
  EXPECT_TRUE(ecmp_node_union(paths, t.num_nodes(), 0, 1).empty());
}

TEST(EcmpNodeUnion, SupersetOfAnyShortestPath) {
  const Topology t = make_geant();
  const AllPairsPaths paths(t);
  for (NodeId s = 0; s < t.num_nodes(); s += 3) {
    for (NodeId d = 0; d < t.num_nodes(); d += 5) {
      if (s == d) continue;
      const auto unio = ecmp_node_union(paths, t.num_nodes(), s, d);
      const auto path = paths.path(s, d);  // keep the optional alive
      for (const NodeId v : *path) {
        EXPECT_NE(std::find(unio.begin(), unio.end(), v), unio.end())
            << s << "->" << d << " missing " << v;
      }
    }
  }
}

}  // namespace
}  // namespace apple::net
