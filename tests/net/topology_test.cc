#include "net/topology.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace apple::net {
namespace {

TEST(Topology, StartsEmpty) {
  Topology t;
  EXPECT_EQ(t.num_nodes(), 0u);
  EXPECT_EQ(t.num_links(), 0u);
  EXPECT_TRUE(t.is_connected());  // vacuously
}

TEST(Topology, AddNodeAssignsDenseIds) {
  Topology t;
  EXPECT_EQ(t.add_node("a"), 0u);
  EXPECT_EQ(t.add_node("b", 64.0), 1u);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.node(0).name, "a");
  EXPECT_FALSE(t.node(0).has_host());
  EXPECT_TRUE(t.node(1).has_host());
  EXPECT_DOUBLE_EQ(t.node(1).host_cores, 64.0);
}

TEST(Topology, RejectsNegativeCores) {
  Topology t;
  EXPECT_THROW(t.add_node("a", -1.0), std::invalid_argument);
}

TEST(Topology, AddLinkWiresAdjacency) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId l = t.add_link(a, b, 100.0, 2.0);
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.link(l).capacity_mbps, 100.0);
  EXPECT_EQ(t.link(l).weight, 2.0);
  EXPECT_EQ(t.link(l).other(a), b);
  EXPECT_EQ(t.link(l).other(b), a);
  ASSERT_EQ(t.incident_links(a).size(), 1u);
  EXPECT_EQ(t.neighbors(a), std::vector<NodeId>{b});
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  EXPECT_THROW(t.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 99), std::out_of_range);
  EXPECT_THROW(t.add_link(a, b, -5.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, 10.0, 0.0), std::invalid_argument);
}

TEST(Topology, FindNodeByName) {
  Topology t;
  t.add_node("alpha");
  t.add_node("beta");
  EXPECT_EQ(t.find_node("beta"), 1u);
  EXPECT_EQ(t.find_node("gamma"), kInvalidNode);
}

TEST(Topology, FindLink) {
  Topology t = make_line(3);
  EXPECT_TRUE(t.find_link(0, 1).has_value());
  EXPECT_TRUE(t.find_link(1, 0).has_value());
  EXPECT_FALSE(t.find_link(0, 2).has_value());
}

TEST(Topology, ConnectivityDetection) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  t.add_node("island");
  t.add_link(a, b);
  EXPECT_FALSE(t.is_connected());
}

TEST(Topology, HostAccounting) {
  Topology t;
  t.add_node("a", 64.0);
  t.add_node("b");
  t.add_node("c", 32.0);
  EXPECT_DOUBLE_EQ(t.total_host_cores(), 96.0);
  EXPECT_EQ(t.host_nodes(), (std::vector<NodeId>{0, 2}));
}

}  // namespace
}  // namespace apple::net
