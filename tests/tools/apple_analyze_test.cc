// Unit tests for the apple_analyze rule engine (tools/analysis/).
//
// Every rule is driven over in-memory fixtures in the four canonical
// states: violating, clean, suppressed-with-justification, and
// suppressed-without-justification (which must NOT suppress and must add a
// 'suppression' meta error). Engine behavior — severity overrides, stale /
// unknown / malformed directives, file-scope suppressions, JSON output —
// is covered at the bottom.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/engine.h"
#include "analysis/rules.h"
#include "analysis/source.h"
#include "obs/json.h"

namespace apple::analysis {
namespace {

using File = std::pair<std::string, std::string>;

Report run_analyzer(const std::vector<File>& files) {
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const File& f : files) {
    sources.push_back(SourceFile::from_string(f.first, f.second));
  }
  Corpus corpus(std::move(sources));
  Analyzer analyzer = make_default_analyzer();
  return analyzer.run(corpus);
}

std::vector<const Finding*> findings_of(const Report& report,
                                        std::string_view rule) {
  std::vector<const Finding*> out;
  for (const Finding& f : report.findings) {
    if (f.rule == rule) out.push_back(&f);
  }
  return out;
}

std::size_t count_unsuppressed(const Report& report, std::string_view rule) {
  std::size_t n = 0;
  for (const Finding& f : report.findings) {
    if (f.rule == rule && !f.suppressed) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

constexpr char kUnorderedViolating[] =
    "#include <unordered_map>\n"
    "std::unordered_map<int, double> table_;\n"
    "double sum() {\n"
    "  double s = 0.0;\n"
    "  for (const auto& [k, v] : table_) s += v;\n"
    "  return s;\n"
    "}\n";

TEST(UnorderedIterRule, FlagsRangeForOverUnorderedMember) {
  const Report r = run_analyzer({{"src/sim/table.cc", kUnorderedViolating}});
  const auto found = findings_of(r, "unordered-iter");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->line, 5u);
  EXPECT_FALSE(found[0]->suppressed);
  EXPECT_FALSE(r.clean());
}

TEST(UnorderedIterRule, SortedSnapshotIsClean) {
  const Report r = run_analyzer({{"src/sim/table.cc",
                                  "#include <unordered_map>\n"
                                  "std::unordered_map<int, double> table_;\n"
                                  "double sum() {\n"
                                  "  double s = 0.0;\n"
                                  "  for (const auto& [k, v] : "
                                  "common::sorted_items(table_)) s += *v;\n"
                                  "  return s;\n"
                                  "}\n"}});
  EXPECT_TRUE(findings_of(r, "unordered-iter").empty());
  EXPECT_TRUE(r.clean());
}

TEST(UnorderedIterRule, JustifiedSuppressionSuppresses) {
  const Report r = run_analyzer(
      {{"src/sim/table.cc",
        "#include <unordered_map>\n"
        "std::unordered_map<int, double> table_;\n"
        "double sum() {\n"
        "  double s = 0.0;\n"
        "  // apple-analyze: allow(unordered-iter): sum is commutative\n"
        "  for (const auto& [k, v] : table_) s += v;\n"
        "  return s;\n"
        "}\n"}});
  const auto found = findings_of(r, "unordered-iter");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0]->suppressed);
  EXPECT_EQ(found[0]->justification, "sum is commutative");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(UnorderedIterRule, EmptyJustificationDoesNotSuppress) {
  const Report r = run_analyzer(
      {{"src/sim/table.cc",
        "#include <unordered_map>\n"
        "std::unordered_map<int, double> table_;\n"
        "double sum() {\n"
        "  double s = 0.0;\n"
        "  // apple-analyze: allow(unordered-iter):\n"
        "  for (const auto& [k, v] : table_) s += v;\n"
        "  return s;\n"
        "}\n"}});
  EXPECT_EQ(count_unsuppressed(r, "unordered-iter"), 1u);
  const auto meta = findings_of(r, "suppression");
  ASSERT_EQ(meta.size(), 1u);
  EXPECT_NE(meta[0]->message.find("empty justification"), std::string::npos);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.errors, 2u);  // the finding itself + the bad directive
}

TEST(UnorderedIterRule, SeesAliasedTypesAndClassicForLoops) {
  const Report r = run_analyzer(
      {{"src/sim/cache.cc",
        "#include <unordered_set>\n"
        "using Cache = std::unordered_set<int>;\n"
        "Cache cache_;\n"
        "void walk() {\n"
        "  for (auto it = cache_.begin(); it != cache_.end(); ++it) {}\n"
        "}\n"}});
  const auto found = findings_of(r, "unordered-iter");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->line, 5u);
}

TEST(UnorderedIterRule, ResolvesDeclarationsAcrossIncludes) {
  const Report r = run_analyzer(
      {{"src/sim/registry.h",
        "#pragma once\n"
        "#include <unordered_map>\n"
        "inline std::unordered_map<int, int> registry_;\n"},
       {"src/sim/user.cc",
        "#include \"sim/registry.h\"\n"
        "int count() {\n"
        "  int n = 0;\n"
        "  for (const auto& [k, v] : registry_) n += v;\n"
        "  return n;\n"
        "}\n"}});
  const auto found = findings_of(r, "unordered-iter");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->file, "src/sim/user.cc");
}

// ---------------------------------------------------------------------------
// ambient-time
// ---------------------------------------------------------------------------

constexpr char kAmbientTimeViolating[] =
    "#include <chrono>\n"
    "double stamp() {\n"
    "  const auto t = std::chrono::steady_clock::now();\n"
    "  return t.time_since_epoch().count();\n"
    "}\n";

TEST(AmbientTimeRule, FlagsClockNowInSrc) {
  const Report r = run_analyzer({{"src/sim/t.cc", kAmbientTimeViolating}});
  const auto found = findings_of(r, "ambient-time");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->line, 3u);
}

TEST(AmbientTimeRule, BenchAndObsAreExempt) {
  const Report r =
      run_analyzer({{"bench/bench_demo.cc", kAmbientTimeViolating},
                    {"src/obs/clock_impl.cc", kAmbientTimeViolating}});
  EXPECT_TRUE(findings_of(r, "ambient-time").empty());
  EXPECT_TRUE(r.clean());
}

TEST(AmbientTimeRule, JustifiedSuppressionSuppresses) {
  const Report r = run_analyzer(
      {{"src/sim/t.cc",
        "#include <chrono>\n"
        "double stamp() {\n"
        "  // apple-analyze: allow(ambient-time): opt-in deadline only\n"
        "  const auto t = std::chrono::steady_clock::now();\n"
        "  return t.time_since_epoch().count();\n"
        "}\n"}});
  const auto found = findings_of(r, "ambient-time");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0]->suppressed);
  EXPECT_TRUE(r.clean());
}

TEST(AmbientTimeRule, EmptyJustificationDoesNotSuppress) {
  const Report r = run_analyzer(
      {{"src/sim/t.cc",
        "#include <chrono>\n"
        "double stamp() {\n"
        "  // apple-analyze: allow(ambient-time):\n"
        "  const auto t = std::chrono::steady_clock::now();\n"
        "  return t.time_since_epoch().count();\n"
        "}\n"}});
  EXPECT_EQ(count_unsuppressed(r, "ambient-time"), 1u);
  ASSERT_EQ(findings_of(r, "suppression").size(), 1u);
  EXPECT_FALSE(r.clean());
}

TEST(AmbientTimeRule, CatchesAliasedClocks) {
  const Report r = run_analyzer(
      {{"src/sim/t.cc",
        "#include <chrono>\n"
        "using Clock = std::chrono::steady_clock;\n"
        "double stamp() { return Clock::now().time_since_epoch().count(); }\n"}});
  const auto found = findings_of(r, "ambient-time");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->line, 3u);
}

// ---------------------------------------------------------------------------
// ambient-random
// ---------------------------------------------------------------------------

TEST(AmbientRandomRule, FlagsRandomDeviceAndUnseededEngines) {
  const Report r = run_analyzer(
      {{"src/sim/rng.cc",
        "#include <random>\n"
        "std::random_device rd;\n"
        "std::mt19937 unseeded;\n"
        "int roll() { return rand(); }\n"}});
  EXPECT_EQ(count_unsuppressed(r, "ambient-random"), 3u);
}

TEST(AmbientRandomRule, SeededEngineIsClean) {
  const Report r = run_analyzer(
      {{"src/sim/rng.cc",
        "#include <random>\n"
        "std::mt19937 rng(42);\n"
        "std::mt19937 rng2{config.seed};\n"}});
  EXPECT_TRUE(findings_of(r, "ambient-random").empty());
  EXPECT_TRUE(r.clean());
}

TEST(AmbientRandomRule, JustifiedSuppressionSuppresses) {
  const Report r = run_analyzer(
      {{"src/sim/rng.cc",
        "#include <random>\n"
        "// apple-analyze: allow(ambient-random): seeded in the ctor body\n"
        "std::mt19937 rng_;\n"}});
  const auto found = findings_of(r, "ambient-random");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0]->suppressed);
  EXPECT_TRUE(r.clean());
}

TEST(AmbientRandomRule, EmptyJustificationDoesNotSuppress) {
  const Report r = run_analyzer(
      {{"src/sim/rng.cc",
        "#include <random>\n"
        "std::mt19937 rng_;  // apple-analyze: allow(ambient-random):\n"}});
  EXPECT_EQ(count_unsuppressed(r, "ambient-random"), 1u);
  ASSERT_EQ(findings_of(r, "suppression").size(), 1u);
  EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------------
// pointer-order
// ---------------------------------------------------------------------------

TEST(PointerOrderRule, FlagsPointerKeyedContainers) {
  const Report r = run_analyzer(
      {{"src/sim/ptr.cc",
        "#include <map>\n"
        "#include <set>\n"
        "struct Foo {};\n"
        "std::map<Foo*, int> by_ptr;\n"
        "std::set<const Foo*> ptr_set;\n"}});
  EXPECT_EQ(count_unsuppressed(r, "pointer-order"), 2u);
}

TEST(PointerOrderRule, IdKeyedContainersAreClean) {
  const Report r = run_analyzer(
      {{"src/sim/ptr.cc",
        "#include <map>\n"
        "struct Foo {};\n"
        "std::map<int, Foo*> by_id;\n"  // pointer VALUES are fine
        "std::less<int> cmp;\n"}});
  EXPECT_TRUE(findings_of(r, "pointer-order").empty());
  EXPECT_TRUE(r.clean());
}

TEST(PointerOrderRule, JustifiedSuppressionSuppresses) {
  const Report r = run_analyzer(
      {{"src/sim/ptr.cc",
        "#include <map>\n"
        "struct Foo {};\n"
        "// apple-analyze: allow(pointer-order): arena-allocated, stable\n"
        "std::map<Foo*, int> by_ptr;\n"}});
  const auto found = findings_of(r, "pointer-order");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0]->suppressed);
  EXPECT_TRUE(r.clean());
}

TEST(PointerOrderRule, EmptyJustificationDoesNotSuppress) {
  const Report r = run_analyzer(
      {{"src/sim/ptr.cc",
        "#include <map>\n"
        "struct Foo {};\n"
        "std::map<Foo*, int> by_ptr;  "
        "// apple-analyze: allow(pointer-order):\n"}});
  EXPECT_EQ(count_unsuppressed(r, "pointer-order"), 1u);
  ASSERT_EQ(findings_of(r, "suppression").size(), 1u);
  EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

TEST(LayeringRule, FlagsInverseDependency) {
  const Report r = run_analyzer(
      {{"src/net/routing_extra.cc",
        "#include \"core/placement.h\"\n"  // net must not depend on core
        "#include \"net/topology.h\"\n"
        "void f() {}\n"}});
  const auto found = findings_of(r, "layering");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->line, 1u);
  EXPECT_NE(found[0]->message.find("layering violation"), std::string::npos);
}

TEST(LayeringRule, DocumentedDependencyIsClean) {
  const Report r = run_analyzer(
      {{"src/core/widget.cc",
        "#include \"core/placement.h\"\n"
        "#include \"lp/simplex.h\"\n"  // core -> lp is in the DAG
        "void f() {}\n"}});
  EXPECT_TRUE(findings_of(r, "layering").empty());
  EXPECT_TRUE(r.clean());
}

TEST(LayeringRule, HeaderHygieneAndRawNew) {
  const Report r = run_analyzer(
      {{"src/net/bad.h",
        "using namespace std;\n"  // banned in headers; also no pragma once
        "int* make() { return new int(7); }\n"}});
  const auto found = findings_of(r, "layering");
  ASSERT_EQ(found.size(), 3u);  // missing pragma, using-namespace, raw new
  EXPECT_FALSE(r.clean());
}

TEST(LayeringRule, FileScopeSuppressionCoversAllFindings) {
  const Report r = run_analyzer(
      {{"src/net/bad.h",
        "// apple-analyze: allow-file(layering): legacy shim, tracked in "
        "ROADMAP\n"
        "using namespace std;\n"
        "int* make() { return new int(7); }\n"}});
  const auto found = findings_of(r, "layering");
  ASSERT_EQ(found.size(), 3u);
  for (const Finding* f : found) EXPECT_TRUE(f->suppressed);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.suppressed, 3u);
}

TEST(LayeringRule, FileScopeSuppressionWithoutJustificationFails) {
  const Report r = run_analyzer(
      {{"src/net/bad.h",
        "// apple-analyze: allow-file(layering):\n"
        "using namespace std;\n"}});
  EXPECT_GE(count_unsuppressed(r, "layering"), 1u);
  ASSERT_EQ(findings_of(r, "suppression").size(), 1u);
  EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------------
// contract-config
// ---------------------------------------------------------------------------

constexpr char kConfigHeader[] =
    "#pragma once\n"
    "struct DemoConfig {\n"
    "  int x = 0;\n"
    "  void validate() const;\n"
    "};\n";

TEST(ContractConfigRule, FlagsUnconsumedValidate) {
  const Report r = run_analyzer({{"src/sim/config.h", kConfigHeader}});
  const auto found = findings_of(r, "contract-config");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->line, 2u);
  EXPECT_NE(found[0]->message.find("DemoConfig"), std::string::npos);
}

TEST(ContractConfigRule, ConsumerInvokingValidateIsClean) {
  const Report r = run_analyzer(
      {{"src/sim/config.h", kConfigHeader},
       {"src/sim/engine.cc",
        "#include \"sim/config.h\"\n"
        "void start(const DemoConfig& c) { c.validate(); }\n"}});
  EXPECT_TRUE(findings_of(r, "contract-config").empty());
  EXPECT_TRUE(r.clean());
}

TEST(ContractConfigRule, JustifiedSuppressionSuppresses) {
  const Report r = run_analyzer(
      {{"src/sim/config.h",
        "#pragma once\n"
        "// apple-analyze: allow(contract-config): validated by the CLI\n"
        "struct DemoConfig {\n"
        "  int x = 0;\n"
        "  void validate() const;\n"
        "};\n"}});
  const auto found = findings_of(r, "contract-config");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0]->suppressed);
  EXPECT_TRUE(r.clean());
}

TEST(ContractConfigRule, EmptyJustificationDoesNotSuppress) {
  const Report r = run_analyzer(
      {{"src/sim/config.h",
        "#pragma once\n"
        "// apple-analyze: allow(contract-config):\n"
        "struct DemoConfig {\n"
        "  int x = 0;\n"
        "  void validate() const;\n"
        "};\n"}});
  EXPECT_EQ(count_unsuppressed(r, "contract-config"), 1u);
  ASSERT_EQ(findings_of(r, "suppression").size(), 1u);
  EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------------
// metric-name
// ---------------------------------------------------------------------------

TEST(MetricNameRule, FlagsRuntimeBuiltAndMalformedNames) {
  const Report r = run_analyzer(
      {{"src/sim/stats.cc",
        "#include \"obs/obs.h\"\n"
        "void tick(const std::string& who) {\n"
        "  APPLE_OBS_COUNT(\"sim.queue.\" + who);\n"      // runtime-built
        "  APPLE_OBS_COUNT(make_name());\n"               // runtime-built
        "  APPLE_OBS_EVENT(\"Sim.Queue.Tick\");\n"        // uppercase
        "  APPLE_OBS_GAUGE_SET(\"nodots\", 1.0);\n"       // no dot
        "}\n"}});
  EXPECT_EQ(count_unsuppressed(r, "metric-name"), 4u);
  EXPECT_FALSE(r.clean());
}

TEST(MetricNameRule, LiteralLowercaseDottedNamesAreClean) {
  const Report r = run_analyzer(
      {{"src/sim/stats.cc",
        "#include \"obs/obs.h\"\n"
        "void tick() {\n"
        "  APPLE_OBS_COUNT(\"sim.queue.ticks\");\n"
        "  APPLE_OBS_COUNT_N(\"sim.queue.depth_total\", 3);\n"
        "  APPLE_OBS_EVENT_N(\"sim.queue.pop\", 7);\n"
        "  APPLE_OBS_SPAN(\"sim.queue.drain_seconds\");\n"
        "  APPLE_OBS_EVENT_SPAN(\"sim.queue.drain\");\n"
        "}\n"}});
  EXPECT_TRUE(findings_of(r, "metric-name").empty());
  EXPECT_TRUE(r.clean());
}

TEST(MetricNameRule, NameSpanningAContinuationLineIsStillChecked) {
  const Report r = run_analyzer(
      {{"src/sim/stats.cc",
        "#include \"obs/obs.h\"\n"
        "void tick() {\n"
        "  APPLE_OBS_COUNT_N(\n"
        "      \"sim.queue.depth_total\", 3);\n"
        "  APPLE_OBS_COUNT_N(\n"
        "      \"Sim.Queue.Bad\", 3);\n"
        "}\n"}});
  EXPECT_EQ(count_unsuppressed(r, "metric-name"), 1u);
}

TEST(MetricNameRule, JustifiedSuppressionSuppresses) {
  const Report r = run_analyzer(
      {{"src/sim/stats.cc",
        "#include \"obs/obs.h\"\n"
        "void tick(const char* who) {\n"
        "  // apple-analyze: allow(metric-name): bounded test-only cardinality\n"
        "  APPLE_OBS_COUNT(who);\n"
        "}\n"}});
  const auto found = findings_of(r, "metric-name");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0]->suppressed);
  EXPECT_TRUE(r.clean());
}

TEST(MetricNameRule, EmptyJustificationDoesNotSuppress) {
  const Report r = run_analyzer(
      {{"src/sim/stats.cc",
        "#include \"obs/obs.h\"\n"
        "void tick(const char* who) {\n"
        "  // apple-analyze: allow(metric-name):\n"
        "  APPLE_OBS_COUNT(who);\n"
        "}\n"}});
  EXPECT_EQ(count_unsuppressed(r, "metric-name"), 1u);
  ASSERT_EQ(findings_of(r, "suppression").size(), 1u);
  EXPECT_FALSE(r.clean());
}

TEST(MetricNameRule, ObsMacroLayerItselfIsExempt) {
  // src/obs/ defines the macros; the forwarding identifiers there are not
  // call sites.
  const Report r = run_analyzer(
      {{"src/obs/obs.h",
        "#pragma once\n"
        "#define APPLE_OBS_COUNT(name) apple::obs::count(name)\n"}});
  EXPECT_TRUE(findings_of(r, "metric-name").empty());
}

// ---------------------------------------------------------------------------
// suppression meta rule + engine behavior
// ---------------------------------------------------------------------------

TEST(SuppressionMeta, UnknownRuleIsAnError) {
  const Report r = run_analyzer(
      {{"src/sim/x.cc",
        "// apple-analyze: allow(no-such-rule): because reasons\n"
        "void f() {}\n"}});
  const auto meta = findings_of(r, "suppression");
  ASSERT_EQ(meta.size(), 1u);
  EXPECT_NE(meta[0]->message.find("unknown rule"), std::string::npos);
  EXPECT_FALSE(r.clean());
}

TEST(SuppressionMeta, StaleSuppressionIsAWarning) {
  const Report r = run_analyzer(
      {{"src/sim/x.cc",
        "// apple-analyze: allow(ambient-time): nothing here actually\n"
        "void f() {}\n"}});
  const auto meta = findings_of(r, "suppression");
  ASSERT_EQ(meta.size(), 1u);
  EXPECT_EQ(meta[0]->severity, Severity::kWarning);
  EXPECT_NE(meta[0]->message.find("stale"), std::string::npos);
  EXPECT_TRUE(r.clean());  // warnings don't fail the gate
  EXPECT_EQ(r.warnings, 1u);
}

TEST(SuppressionMeta, MalformedDirectiveIsAnError) {
  const Report r = run_analyzer(
      {{"src/sim/x.cc",
        "// apple-analyze: allowance for everything\n"
        "void f() {}\n"}});
  const auto meta = findings_of(r, "suppression");
  ASSERT_EQ(meta.size(), 1u);
  EXPECT_NE(meta[0]->message.find("malformed"), std::string::npos);
  EXPECT_FALSE(r.clean());
}

TEST(Engine, SeverityOverrideToWarningKeepsGateGreen) {
  std::vector<SourceFile> sources;
  sources.push_back(
      SourceFile::from_string("src/sim/t.cc", kAmbientTimeViolating));
  Corpus corpus(std::move(sources));
  Analyzer analyzer = make_default_analyzer();
  analyzer.set_severity("ambient-time", Severity::kWarning);
  const Report r = analyzer.run(corpus);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.warnings, 1u);
}

TEST(Engine, SeverityOffDisablesRule) {
  std::vector<SourceFile> sources;
  sources.push_back(
      SourceFile::from_string("src/sim/t.cc", kAmbientTimeViolating));
  Corpus corpus(std::move(sources));
  Analyzer analyzer = make_default_analyzer();
  analyzer.set_severity("ambient-time", Severity::kOff);
  const Report r = analyzer.run(corpus);
  EXPECT_TRUE(findings_of(r, "ambient-time").empty());
  EXPECT_TRUE(r.clean());
}

TEST(Engine, FindingsAreSortedByFileLineRule) {
  const Report r = run_analyzer(
      {{"src/sim/b.cc", kAmbientTimeViolating},
       {"src/sim/a.cc", kAmbientTimeViolating}});
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].file, "src/sim/a.cc");
  EXPECT_EQ(r.findings[1].file, "src/sim/b.cc");
}

TEST(Engine, JsonReportRoundTrips) {
  const Report r = run_analyzer(
      {{"src/sim/table.cc", kUnorderedViolating},
       {"src/sim/t.cc",
        "#include <chrono>\n"
        "// apple-analyze: allow(ambient-time): fixture\n"
        "auto t = std::chrono::steady_clock::now();\n"}});
  const auto doc = obs::json::parse(r.to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("tool")->string, "apple_analyze");
  EXPECT_EQ(doc->find("files_scanned")->number, 2.0);
  const obs::json::Value* summary = doc->find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("errors")->number, 1.0);
  EXPECT_EQ(summary->find("suppressed")->number, 1.0);
  const obs::json::Value* by_rule = summary->find("by_rule");
  ASSERT_NE(by_rule, nullptr);
  ASSERT_NE(by_rule->find("ambient-time"), nullptr);
  EXPECT_EQ(by_rule->find("ambient-time")->find("suppressed")->number, 1.0);
  const obs::json::Value* findings = doc->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->items.size(), 2u);
  // Suppressed findings stay in the report with their justification.
  bool saw_justification = false;
  for (const obs::json::Value& f : findings->items) {
    if (f.find("suppressed")->boolean) {
      EXPECT_EQ(f.find("justification")->string, "fixture");
      saw_justification = true;
    }
  }
  EXPECT_TRUE(saw_justification);
}

TEST(Engine, InlineSuppressionCoversItsOwnLine) {
  const Report r = run_analyzer(
      {{"src/sim/t.cc",
        "#include <chrono>\n"
        "auto t = std::chrono::steady_clock::now();  "
        "// apple-analyze: allow(ambient-time): fixture\n"}});
  const auto found = findings_of(r, "ambient-time");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0]->suppressed);
}

TEST(Engine, SuppressionForOneRuleDoesNotHideAnother) {
  const Report r = run_analyzer(
      {{"src/sim/mix.cc",
        "#include <random>\n"
        "#include <chrono>\n"
        "// apple-analyze: allow(ambient-time): fixture\n"
        "auto t = std::chrono::steady_clock::now();\n"
        "std::random_device rd;\n"}});
  EXPECT_EQ(count_unsuppressed(r, "ambient-time"), 0u);
  EXPECT_EQ(count_unsuppressed(r, "ambient-random"), 1u);
  EXPECT_FALSE(r.clean());
}

}  // namespace
}  // namespace apple::analysis
